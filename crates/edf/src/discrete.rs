//! Discrete-voltage scheduling: the Ishihara–Yasuura theorem.
//!
//! Reference \[16\] of the paper (*Voltage scheduling problem for dynamically
//! variable voltage processors*, ISLPED 1998) proves that on a processor
//! with finitely many voltage levels, the minimum-energy way to execute a
//! given amount of work in a given time uses **at most two levels, and
//! they are adjacent** — the neighbours of the ideal continuous speed.
//! Rounding the whole interval up to the next level (what a naive port of
//! a continuous schedule does, and what LPFPS's L18 does at run time to
//! stay simple and safe) wastes the gap; the two-level split closes it.
//!
//! This module converts a continuous [`YdsSchedule`] into its optimal
//! discrete counterpart on a [`FrequencyLadder`] and prices both, so the
//! cost of discreteness is measurable per workload.

use crate::yds::{SpeedSegment, YdsSchedule};
use lpfps_cpu::ladder::FrequencyLadder;
use lpfps_cpu::power::PowerModel;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// A discrete realization of one continuous segment: run `lo_time` at
/// `lo` and `hi_time` at `hi` (adjacent ladder levels straddling the
/// ideal speed), delivering exactly the segment's work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscreteSegment {
    /// The lower of the two levels (equals `hi` when the ideal speed is a
    /// ladder level or clamps at a ladder end).
    pub lo: Freq,
    /// The higher of the two levels.
    pub hi: Freq,
    /// Wall-clock time spent at `lo`.
    pub lo_time: Dur,
    /// Wall-clock time spent at `hi`.
    pub hi_time: Dur,
}

impl DiscreteSegment {
    /// Realizes a continuous `(length, speed)` segment on `ladder`
    /// (speeds are fractions of `reference`).
    ///
    /// The split solves `t_lo * r_lo + t_hi * r_hi = length * speed` with
    /// `t_lo + t_hi = length` — exact work conservation; the idle
    /// remainder is zero by construction because `r_lo <= speed <= r_hi`.
    pub fn realize(segment: &SpeedSegment, ladder: &FrequencyLadder, reference: Freq) -> Self {
        let ideal = segment.speed;
        let hi = ladder.quantize_up_ratio(ideal);
        let r_hi = hi.ratio_to(reference);
        // The adjacent level below `hi` (or `hi` itself at the ladder floor
        // or when the ideal speed exceeds every level).
        let lo = if hi > ladder.min() && r_hi > ideal {
            Freq::from_khz(hi.as_khz() - ladder.step().as_khz())
        } else {
            hi
        };
        let r_lo = lo.ratio_to(reference);
        if lo == hi || (r_hi - r_lo).abs() < 1e-15 {
            return DiscreteSegment {
                lo,
                hi,
                lo_time: Dur::ZERO,
                hi_time: segment.length,
            };
        }
        // Work conservation: t_hi = length * (ideal - r_lo) / (r_hi - r_lo).
        let frac_hi = ((ideal - r_lo) / (r_hi - r_lo)).clamp(0.0, 1.0);
        let hi_ns = (segment.length.as_ns() as f64 * frac_hi).round() as u64;
        let hi_time = Dur::from_ns(hi_ns.min(segment.length.as_ns()));
        DiscreteSegment {
            lo,
            hi,
            lo_time: segment.length - hi_time,
            hi_time,
        }
    }

    /// Normalized energy of the realized segment.
    pub fn energy(&self, power: &PowerModel) -> f64 {
        power.busy(self.lo) * self.lo_time.as_secs_f64()
            + power.busy(self.hi) * self.hi_time.as_secs_f64()
    }
}

/// A continuous schedule realized on a discrete ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteSchedule {
    segments: Vec<DiscreteSegment>,
}

impl DiscreteSchedule {
    /// Realizes every segment of `sched` on `ladder` via the two-adjacent-
    /// levels theorem.
    pub fn realize(sched: &YdsSchedule, ladder: &FrequencyLadder, reference: Freq) -> Self {
        DiscreteSchedule {
            segments: sched
                .segments()
                .iter()
                .map(|s| DiscreteSegment::realize(s, ladder, reference))
                .collect(),
        }
    }

    /// The realized segments.
    pub fn segments(&self) -> &[DiscreteSegment] {
        &self.segments
    }

    /// Total normalized energy.
    pub fn energy(&self, power: &PowerModel) -> f64 {
        self.segments.iter().map(|s| s.energy(power)).sum()
    }

    /// Energy of the naive alternative: each segment rounded wholly up to
    /// the next ladder level (finishing early and idling free, as in the
    /// idealized model). The gap to [`energy`](Self::energy) is the price
    /// of single-level rounding.
    pub fn round_up_energy(
        sched: &YdsSchedule,
        ladder: &FrequencyLadder,
        reference: Freq,
        power: &PowerModel,
    ) -> f64 {
        sched
            .segments()
            .iter()
            .map(|s| {
                let f = ladder.quantize_up_ratio(s.speed);
                let r = f.ratio_to(reference);
                if r <= 0.0 {
                    return 0.0;
                }
                // Work s.speed * length executed at ratio r takes
                // length * s.speed / r of wall time.
                let busy = s.length.as_secs_f64() * (s.speed / r).min(1.0);
                power.busy(f) * busy
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Job, JobSet};
    use lpfps_tasks::time::Time;

    const REF: Freq = Freq::from_mhz(100);

    fn coarse_ladder() -> FrequencyLadder {
        // 20 MHz steps: a harsh ladder where discreteness really bites.
        FrequencyLadder::new(Freq::from_mhz(20), Freq::from_mhz(100), Freq::from_mhz(20))
    }

    fn one_segment(speed: f64, length_us: u64) -> YdsSchedule {
        // Build a YDS schedule with exactly one segment via a single job.
        let work = Dur::from_ns((speed * length_us as f64 * 1_000.0).round() as u64);
        let js = JobSet::new(vec![Job::new(Time::ZERO, Time::from_us(length_us), work)]);
        YdsSchedule::compute(&js)
    }

    #[test]
    fn ladder_level_speeds_need_no_split() {
        let sched = one_segment(0.6, 1_000);
        let d = DiscreteSchedule::realize(&sched, &coarse_ladder(), REF);
        let seg = d.segments()[0];
        assert_eq!(seg.hi, Freq::from_mhz(60));
        assert_eq!(seg.lo_time, Dur::ZERO);
        assert_eq!(seg.hi_time, Dur::from_us(1_000));
    }

    #[test]
    fn off_level_speeds_split_between_adjacent_levels() {
        let sched = one_segment(0.5, 1_000);
        let d = DiscreteSchedule::realize(&sched, &coarse_ladder(), REF);
        let seg = d.segments()[0];
        assert_eq!(seg.lo, Freq::from_mhz(40));
        assert_eq!(seg.hi, Freq::from_mhz(60));
        // 0.5 sits midway between 0.4 and 0.6: a 50/50 split.
        assert_eq!(seg.lo_time, Dur::from_us(500));
        assert_eq!(seg.hi_time, Dur::from_us(500));
        // Work conserved: 0.4*500 + 0.6*500 = 500 us of unit work = 0.5*1000.
    }

    #[test]
    fn split_conserves_work_exactly() {
        for speed_pct in [23u64, 41, 57, 99] {
            let speed = speed_pct as f64 / 100.0;
            let sched = one_segment(speed, 10_000);
            let d = DiscreteSchedule::realize(&sched, &coarse_ladder(), REF);
            let seg = d.segments()[0];
            let done = seg.lo.ratio_to(REF) * seg.lo_time.as_ns() as f64
                + seg.hi.ratio_to(REF) * seg.hi_time.as_ns() as f64;
            let wanted = speed * 10_000_000.0;
            assert!(
                (done - wanted).abs() < seg.hi.ratio_to(REF),
                "speed {speed}: {done} != {wanted}"
            );
        }
    }

    #[test]
    fn two_level_split_beats_rounding_up() {
        // Ishihara & Yasuura's point, measured: for off-level speeds the
        // split is strictly cheaper than running everything at the next
        // level up.
        let pm = PowerModel::default();
        let ladder = coarse_ladder();
        let sched = one_segment(0.5, 10_000);
        let split = DiscreteSchedule::realize(&sched, &ladder, REF).energy(&pm);
        let rounded = DiscreteSchedule::round_up_energy(&sched, &ladder, REF, &pm);
        assert!(split < rounded, "split {split} !< rounded {rounded}");
        // And both cost at least the continuous optimum.
        let continuous = sched.energy(&pm);
        assert!(continuous <= split + 1e-12);
    }

    #[test]
    fn fine_ladders_shrink_the_discreteness_gap() {
        let pm = PowerModel::default();
        let sched = one_segment(0.437, 10_000);
        let continuous = sched.energy(&pm);
        let gap = |step_mhz: u64| {
            let ladder = FrequencyLadder::new(
                Freq::from_mhz(20),
                Freq::from_mhz(100),
                Freq::from_mhz(step_mhz),
            );
            DiscreteSchedule::realize(&sched, &ladder, REF).energy(&pm) - continuous
        };
        assert!(gap(20) >= gap(10) - 1e-15);
        assert!(gap(10) >= gap(1) - 1e-15);
        assert!(gap(1) < 1e-4);
    }

    #[test]
    fn whole_workload_realization_is_consistent() {
        use lpfps_tasks::exec::AlwaysWcet;
        let js = JobSet::from_taskset(&lpfps_workloads::cnc(), Dur::from_us(9_600), &AlwaysWcet, 0);
        let pm = PowerModel::default();
        let sched = YdsSchedule::compute(&js);
        let ladder = FrequencyLadder::default(); // the paper's 1 MHz ladder
        let d = DiscreteSchedule::realize(&sched, &ladder, REF);
        let continuous = sched.energy(&pm);
        let discrete = d.energy(&pm);
        // On a 1 MHz ladder, discreteness costs well under 1%.
        assert!(discrete + 1e-15 >= continuous);
        assert!(discrete < continuous * 1.01, "{discrete} vs {continuous}");
    }
}
