//! Property-based tests for the EDF/YDS/AVR baselines.

use lpfps_cpu::power::PowerModel;
use lpfps_edf::{simulate_edf, simulate_edf_full_speed, Job, JobSet, SpeedProfile, YdsSchedule};
use lpfps_tasks::time::{Dur, Time};
use proptest::prelude::*;

/// Random feasible job sets: jobs with windows inside [0, 10ms] and work
/// at most a third of the window, which keeps every interval intensity
/// comfortably below 1 for small job counts.
fn arb_jobs() -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0u64..8_000, 50u64..2_000, 1u64..100), 1..10)
        .prop_map(|raw| {
            let jobs = raw
                .into_iter()
                .map(|(start, window, work_pct)| {
                    let work_us = (window * work_pct.min(33) / 100).max(1);
                    Job::new(
                        Time::from_us(start),
                        Time::from_us(start + window),
                        Dur::from_us(work_us),
                    )
                })
                .collect();
            JobSet::new(jobs)
        })
        .prop_filter("feasible at unit speed", |js| js.max_intensity() <= 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn yds_conserves_work_and_orders_speeds(js in arb_jobs()) {
        let sched = YdsSchedule::compute(&js);
        let mut prev = f64::INFINITY;
        let mut processed = 0.0;
        for s in sched.segments() {
            prop_assert!(s.speed <= prev + 1e-9, "speeds must be non-increasing");
            prop_assert!(s.speed <= 1.0 + 1e-9, "feasible sets stay within unit speed");
            prev = s.speed;
            processed += s.speed * s.length.as_ns() as f64;
        }
        let demanded = js.total_work().as_ns() as f64;
        prop_assert!((processed - demanded).abs() <= demanded * 1e-9 + 1e-6);
        prop_assert!(sched.busy_time() <= sched.span());
    }

    #[test]
    fn yds_peak_equals_max_intensity(js in arb_jobs()) {
        let sched = YdsSchedule::compute(&js);
        // The first critical interval *is* the max-intensity interval.
        prop_assert!((sched.peak_speed() - js.max_intensity()).abs() < 1e-9);
    }

    #[test]
    fn avr_is_feasible_and_never_beats_yds(js in arb_jobs()) {
        let power = PowerModel::default();
        let avr = simulate_edf(&js, &SpeedProfile::avr(&js), &power);
        prop_assert_eq!(avr.misses, 0, "AVR guarantees feasibility");
        prop_assert_eq!(avr.completed, js.len());
        let optimal = YdsSchedule::compute(&js).energy(&power);
        prop_assert!(
            optimal <= avr.energy + 1e-9,
            "optimal {} must not exceed AVR {}",
            optimal,
            avr.energy
        );
    }

    #[test]
    fn full_speed_edf_is_feasible_and_most_expensive(js in arb_jobs()) {
        let power = PowerModel::default();
        let full = simulate_edf_full_speed(&js, &power);
        prop_assert_eq!(full.misses, 0, "EDF at unit speed schedules feasible sets");
        // Busy time at full speed equals total work exactly.
        let work_secs = js.total_work().as_secs_f64();
        prop_assert!((full.busy_secs - work_secs).abs() < 1e-9);
        // Racing at full speed burns at least as much as AVR — whenever
        // AVR's profile stays within the real processor's speed range.
        // (Where density sums exceed 1, the idealized model's super-unity
        // speeds cost super-unity power and AVR can legitimately lose.)
        let profile = SpeedProfile::avr(&js);
        if profile.peak() <= 1.0 {
            let avr = simulate_edf(&js, &profile, &power);
            prop_assert!(avr.energy <= full.energy + 1e-9);
        }
    }

    #[test]
    fn avr_speed_bounds_hold_pointwise(js in arb_jobs()) {
        let p = SpeedProfile::avr(&js);
        // The AVR speed is bounded by the sum of all densities and is
        // at least the density of any single covering window.
        let total: f64 = js.jobs().iter().map(|j| j.density()).sum();
        for &j in js.jobs() {
            let mid = (j.release.as_ns() + j.deadline.as_ns()) as f64 / 2.0;
            let s = p.speed_at(mid);
            prop_assert!(s + 1e-12 >= j.density());
            prop_assert!(s <= total + 1e-12);
        }
    }
}
