//! The flight-control workload.
//!
//! Source: J. Liu et al., *PERTS: A prototyping environment for real-time
//! systems*, UIUC technical report — the citation behind the paper's
//! "Flight control" row of Table 2 (6 tasks, WCETs 10 000–60 000 µs).
//!
//! The primary source prints no task table in the paper itself, so the set
//! below is reconstructed to satisfy every published constraint: six
//! tasks, WCETs spanning exactly 10–60 ms, control-loop periods in the
//! tens-to-hundreds of milliseconds typical of PERTS flight-control
//! demonstrations, RM-schedulable at a high utilization (0.825) so that —
//! as in the paper's Figure 8(c) — FPS burns most of the horizon busy and
//! LPFPS's gain comes chiefly from execution-time variation.

use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// Builds the 6-task flight-control set with rate-monotonic priorities.
///
/// # Examples
///
/// ```
/// let ts = lpfps_workloads::flight_control();
/// assert_eq!(ts.len(), 6);
/// let (lo, hi) = ts.wcet_range();
/// assert_eq!(lo, lpfps_tasks::time::Dur::from_ms(10));
/// assert_eq!(hi, lpfps_tasks::time::Dur::from_ms(60));
/// ```
pub fn flight_control() -> TaskSet {
    match try_flight_control() {
        Ok(ts) => ts,
        // Unreachable: the constants below are validated by this module's
        // tests and the doctest above.
        Err(e) => unreachable!("the flight-control constants are valid: {e}"),
    }
}

/// Fallible counterpart of [`flight_control`]: builds the set through the validating
/// constructors, so the catalog is provably panic-free end to end.
///
/// # Errors
///
/// Returns the [`TaskSetError`] naming the violated rule (never fires for
/// the constants encoded here).
pub fn try_flight_control() -> Result<TaskSet, TaskSetError> {
    let params: [(&str, u64, u64); 6] = [
        ("guidance", 40, 10),
        ("control_law", 50, 12),
        ("navigation", 100, 10),
        ("sensor_fusion", 200, 20),
        ("telemetry", 400, 30),
        ("system_monitor", 1_000, 60),
    ];
    let tasks = params
        .iter()
        .map(|&(name, t, c)| Task::validated(name, Dur::from_ms(t), Dur::from_ms(c)))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::try_rate_monotonic("flight_control", tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::{hyperperiod, rta_schedulable};

    #[test]
    fn matches_table2_summary() {
        let ts = flight_control();
        assert_eq!(ts.len(), 6);
        let (lo, hi) = ts.wcet_range();
        assert_eq!(lo, Dur::from_us(10_000));
        assert_eq!(hi, Dur::from_us(60_000));
    }

    #[test]
    fn utilization_is_high() {
        let u = flight_control().utilization();
        assert!((u - 0.825).abs() < 1e-9, "U = {u}");
    }

    #[test]
    fn rate_monotonic_schedulable() {
        assert!(rta_schedulable(&flight_control()));
    }

    #[test]
    fn hyperperiod_is_two_seconds() {
        assert_eq!(hyperperiod(&flight_control()), Some(Dur::from_secs(2)));
    }
}
