//! Seeded workload derivation for multicore experiments.
//!
//! The paper's applications are uniprocessor task sets; a partitioned
//! M-core experiment needs roughly M cores' worth of honest load. Rather
//! than inventing new workloads, [`WorkloadBuilder`] derives them from the
//! reconstructed ones:
//!
//! * [`WorkloadBuilder::replicate`] — n copies of the base set with
//!   deterministic task renaming and seeded phase staggering, so replicas
//!   are distinguishable, don't release in lockstep, and keep every
//!   per-task parameter (period, WCET, BCET, deadline) bit-identical to
//!   the original — total utilization scales exactly n×;
//! * [`WorkloadBuilder::scale_utilization`] — the same task structure with
//!   WCETs (and BCETs, proportionally) rescaled to hit a target total
//!   utilization.
//!
//! Both derivations are pure functions of `(base set, seed, parameters)`:
//! the builder draws from the same counter-based SplitMix64 streams as the
//! execution-time models, so a derived workload is byte-identical across
//! runs, hosts, and thread counts.

use lpfps_tasks::rng::job_stream;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// Domain separator for the phase-stagger stream (keeps it disjoint from
/// execution-time and fault streams even under equal seeds).
const DOMAIN_STAGGER: u64 = 0x7F4A_7C15_9E37_79B9;

/// Derives multicore-scale workloads from a base task set. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    base: TaskSet,
    seed: u64,
}

impl WorkloadBuilder {
    /// A builder over `base` with seed 0.
    pub fn new(base: TaskSet) -> Self {
        WorkloadBuilder { base, seed: 0 }
    }

    /// Sets the seed of the phase-stagger stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `n` copies of the base set, RM priorities re-derived over the
    /// union.
    ///
    /// Replica 0 is the base set verbatim (names and phases untouched);
    /// replica `r > 0` renames each task `"{name}.r{r}"` and offsets its
    /// phase by a seeded draw uniform in `[0, min period)`, so replicas
    /// never release in lockstep while periods, WCETs, BCETs and
    /// deadlines stay bit-identical — per-replica utilization is exactly
    /// the base utilization, and the total scales exactly n×.
    ///
    /// `replicate(1)` returns the base set unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicate(&self, n: usize) -> TaskSet {
        assert!(n >= 1, "replication factor must be at least 1");
        if n == 1 {
            return self.base.clone();
        }
        let min_period_ns = self
            .base
            .tasks()
            .iter()
            .map(|t| t.period().as_ns())
            .min()
            .unwrap_or(1);
        let mut tasks = Vec::with_capacity(self.base.len() * n);
        for r in 0..n {
            for (i, task) in self.base.tasks().iter().enumerate() {
                if r == 0 {
                    tasks.push(task.clone());
                    continue;
                }
                let stagger = Dur::from_ns(
                    job_stream(self.seed ^ DOMAIN_STAGGER, i, r as u64).next_u64() % min_period_ns,
                );
                let mut replica =
                    Task::new(format!("{}.r{r}", task.name()), task.period(), task.wcet())
                        .with_deadline(task.deadline())
                        .with_phase(task.phase() + stagger);
                if task.bcet() != task.wcet() {
                    replica = replica.with_bcet(task.bcet());
                }
                tasks.push(replica);
            }
        }
        TaskSet::rate_monotonic(format!("{}x{n}", self.base.name()), tasks)
    }

    /// The base structure with WCETs rescaled so total utilization hits
    /// `target` (BCETs scale by the same factor, so each task's BCET/WCET
    /// ratio is preserved up to integer rounding). Periods, deadlines and
    /// phases are untouched.
    ///
    /// WCETs are whole nanoseconds, so the achieved utilization matches
    /// `target` up to one rounding unit per task.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not finite and positive, or if scaling would
    /// push any task's WCET above its period or deadline (the derived set
    /// would be trivially infeasible).
    pub fn scale_utilization(&self, target: f64) -> TaskSet {
        assert!(
            target.is_finite() && target > 0.0,
            "target utilization must be finite and positive"
        );
        let factor = target / self.base.utilization();
        let scale = |d: Dur| Dur::from_ns(((d.as_ns() as f64 * factor).round() as u64).max(1));
        let tasks = self
            .base
            .tasks()
            .iter()
            .map(|task| {
                let wcet = scale(task.wcet());
                assert!(
                    wcet <= task.period() && wcet <= task.deadline(),
                    "scaling {} to u={target} pushes WCET past its period/deadline",
                    task.name()
                );
                let bcet = scale(task.bcet()).min(wcet);
                let mut scaled = Task::new(task.name(), task.period(), wcet)
                    .with_deadline(task.deadline())
                    .with_phase(task.phase());
                if bcet != wcet {
                    scaled = scaled.with_bcet(bcet);
                }
                scaled
            })
            .collect();
        TaskSet::rate_monotonic(format!("{}-u{target:.2}", self.base.name()), tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn replicate_preserves_per_task_parameters() {
        let ts = WorkloadBuilder::new(base()).with_seed(11).replicate(4);
        assert_eq!(ts.name(), "table1x4");
        assert_eq!(ts.len(), 12);
        let originals = base();
        for r in 0..4 {
            for (i, orig) in originals.tasks().iter().enumerate() {
                let replica = &ts.tasks()[r * originals.len() + i];
                assert_eq!(replica.period(), orig.period());
                assert_eq!(replica.wcet(), orig.wcet());
                assert_eq!(replica.bcet(), orig.bcet());
                assert_eq!(replica.deadline(), orig.deadline());
                if r == 0 {
                    assert_eq!(replica.name(), orig.name());
                    assert_eq!(replica.phase(), orig.phase());
                } else {
                    assert_eq!(replica.name(), format!("{}.r{r}", orig.name()));
                }
            }
        }
    }

    #[test]
    fn replication_scales_total_utilization_exactly_n_times() {
        let b = WorkloadBuilder::new(base()).with_seed(3);
        let u1 = base().utilization();
        for n in [1usize, 2, 4, 8] {
            let un = b.replicate(n).utilization();
            // Per-replica utilizations are bit-identical, so the sum is
            // n x the base up to f64 association (one ulp per addition).
            assert!(
                (un - n as f64 * u1).abs() < 1e-12,
                "replicate({n}): {un} != {}",
                n as f64 * u1
            );
        }
    }

    #[test]
    fn replicate_one_is_the_identity() {
        let ts = WorkloadBuilder::new(base()).with_seed(9).replicate(1);
        assert_eq!(ts.name(), "table1");
        assert_eq!(ts.len(), 3);
        for (a, b) in ts.tasks().iter().zip(base().tasks()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.phase(), b.phase());
        }
    }

    #[test]
    fn phase_stagger_is_seeded_deterministic_and_bounded() {
        let a = WorkloadBuilder::new(base()).with_seed(5).replicate(3);
        let b = WorkloadBuilder::new(base()).with_seed(5).replicate(3);
        for (x, y) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(x.phase(), y.phase(), "same seed must stagger identically");
        }
        let min_period = Dur::from_us(50);
        assert!(a.tasks().iter().all(|t| t.phase() < min_period));
        // A different seed moves at least one replica phase.
        let c = WorkloadBuilder::new(base()).with_seed(6).replicate(3);
        assert!(
            a.tasks()
                .iter()
                .zip(c.tasks())
                .any(|(x, y)| x.phase() != y.phase()),
            "stagger must depend on the seed"
        );
    }

    #[test]
    fn scale_utilization_hits_the_target() {
        let b = WorkloadBuilder::new(base());
        for target in [0.3, 0.6, 0.85] {
            let ts = b.scale_utilization(target);
            assert!(
                (ts.utilization() - target).abs() < 1e-3,
                "u={} for target {target}",
                ts.utilization()
            );
            for (orig, scaled) in base().tasks().iter().zip(ts.tasks()) {
                assert_eq!(scaled.period(), orig.period());
                assert_eq!(scaled.deadline(), orig.deadline());
            }
        }
    }

    #[test]
    fn scale_utilization_preserves_bcet_ratio() {
        let half = base().with_bcet_fraction(0.5);
        let ts = WorkloadBuilder::new(half).scale_utilization(0.5);
        for t in ts.tasks() {
            let ratio = t.bcet().as_ns() as f64 / t.wcet().as_ns() as f64;
            assert!((ratio - 0.5).abs() < 1e-3, "ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "past its period")]
    fn overloading_a_task_is_rejected() {
        // tau3 at u=0.4 of U=0.85: scaling to 2.2 total pushes it past
        // its period.
        let _ = WorkloadBuilder::new(base()).scale_utilization(2.2);
    }
}
