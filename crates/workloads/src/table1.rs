//! The paper's Table 1: the three-task motivating example.

use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// The example task set of Table 1 (all times in microseconds):
///
/// | task | T   | D   | C  | priority |
/// |------|-----|-----|----|----------|
/// | tau1 | 50  | 50  | 10 | 1        |
/// | tau2 | 80  | 80  | 20 | 2        |
/// | tau3 | 100 | 100 | 40 | 3        |
///
/// Rate-monotonic priorities (periods equal deadlines); total utilization
/// 0.85; *just* schedulable — if tau2 ran slightly longer, tau3 would miss
/// its deadline at t = 100 (verified by tests here and in `lpfps-tasks`).
///
/// # Examples
///
/// ```
/// let ts = lpfps_workloads::table1();
/// assert_eq!(ts.len(), 3);
/// assert!((ts.utilization() - 0.85).abs() < 1e-12);
/// ```
pub fn table1() -> TaskSet {
    match try_table1() {
        Ok(ts) => ts,
        // Unreachable: the constants below are validated by this module's
        // tests and the doctest above.
        Err(e) => unreachable!("the Table 1 constants are valid: {e}"),
    }
}

/// Fallible counterpart of [`table1`]: builds the set through the
/// validating constructors, so the catalog is provably panic-free end to
/// end.
///
/// # Errors
///
/// Returns the [`TaskSetError`] naming the violated rule (never fires for
/// the constants encoded here).
pub fn try_table1() -> Result<TaskSet, TaskSetError> {
    TaskSet::try_rate_monotonic(
        "table1",
        vec![
            Task::validated("tau1", Dur::from_us(50), Dur::from_us(10))?,
            Task::validated("tau2", Dur::from_us(80), Dur::from_us(20))?,
            Task::validated("tau3", Dur::from_us(100), Dur::from_us(40))?,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::{hyperperiod, rta_schedulable};
    use lpfps_tasks::task::TaskId;

    #[test]
    fn matches_the_paper_parameters() {
        let ts = table1();
        let t2 = ts.task(TaskId(1));
        assert_eq!(t2.period(), Dur::from_us(80));
        assert_eq!(t2.deadline(), Dur::from_us(80));
        assert_eq!(t2.wcet(), Dur::from_us(20));
        // Priorities in row order, tau1 highest.
        assert!(ts
            .priority(TaskId(0))
            .is_higher_than(ts.priority(TaskId(1))));
        assert!(ts
            .priority(TaskId(1))
            .is_higher_than(ts.priority(TaskId(2))));
    }

    #[test]
    fn just_meets_schedulability() {
        assert!(rta_schedulable(&table1()));
    }

    #[test]
    fn hyperperiod_is_400us() {
        assert_eq!(hyperperiod(&table1()), Some(Dur::from_us(400)));
    }
}
