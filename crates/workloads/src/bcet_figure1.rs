//! The data behind the paper's Figure 1: BCET/WCET ratios of embedded
//! programs.
//!
//! The paper motivates LPFPS with measurements from R. Ernst and W. Ye,
//! *Embedded program timing analysis based on path clustering and
//! architecture classification* (ICCAD 1997): across embedded kernels the
//! best-case execution time is often a small fraction of the worst case.
//! The published figure is a bar chart without a numeric table; the
//! entries below are representative ratios for the benchmark classes that
//! the literature reports (data-independent DSP kernels near 1.0;
//! data-dependent, control-heavy codes far below), and they drive the
//! `fig1_bcet_ratio` reproduction binary and the BCET sweeps.

use serde::{Deserialize, Serialize};

/// One application's measured execution-time spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcetRatio {
    /// Benchmark name.
    pub name: &'static str,
    /// BCET divided by WCET, in `(0, 1]`.
    pub ratio: f64,
    /// Coarse characterization used in the figure's discussion.
    pub class: BenchmarkClass,
}

/// Why a benchmark's execution time does or does not vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchmarkClass {
    /// Fixed iteration counts, no data-dependent branches (DSP kernels).
    DataIndependent,
    /// Input-dependent control flow (compression, search, UI).
    DataDependent,
}

/// The Figure-1 dataset: BCET/WCET ratios per application.
///
/// # Examples
///
/// ```
/// let data = lpfps_workloads::bcet_ratios();
/// assert!(data.iter().all(|b| b.ratio > 0.0 && b.ratio <= 1.0));
/// // The spread motivating the paper: some applications run at under
/// // 20% of their WCET in the best case.
/// assert!(data.iter().any(|b| b.ratio < 0.2));
/// ```
pub fn bcet_ratios() -> &'static [BcetRatio] {
    use BenchmarkClass::*;
    const DATA: &[BcetRatio] = &[
        BcetRatio {
            name: "lattice_filter",
            ratio: 0.94,
            class: DataIndependent,
        },
        BcetRatio {
            name: "fdct",
            ratio: 0.86,
            class: DataIndependent,
        },
        BcetRatio {
            name: "fir_filter",
            ratio: 0.78,
            class: DataIndependent,
        },
        BcetRatio {
            name: "whetstone",
            ratio: 0.64,
            class: DataIndependent,
        },
        BcetRatio {
            name: "fft",
            ratio: 0.57,
            class: DataIndependent,
        },
        BcetRatio {
            name: "lms_filter",
            ratio: 0.56,
            class: DataIndependent,
        },
        BcetRatio {
            name: "matcnt",
            ratio: 0.45,
            class: DataDependent,
        },
        BcetRatio {
            name: "stats",
            ratio: 0.41,
            class: DataDependent,
        },
        BcetRatio {
            name: "smoothing",
            ratio: 0.32,
            class: DataDependent,
        },
        BcetRatio {
            name: "compress",
            ratio: 0.26,
            class: DataDependent,
        },
        BcetRatio {
            name: "motion_estimation",
            ratio: 0.13,
            class: DataDependent,
        },
        BcetRatio {
            name: "insertion_sort",
            ratio: 0.10,
            class: DataDependent,
        },
    ];
    DATA
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_in_unit_interval() {
        for b in bcet_ratios() {
            assert!(
                b.ratio > 0.0 && b.ratio <= 1.0,
                "{} ratio {}",
                b.name,
                b.ratio
            );
        }
    }

    #[test]
    fn data_independent_kernels_vary_less() {
        let data = bcet_ratios();
        let avg = |class: BenchmarkClass| {
            let xs: Vec<f64> = data
                .iter()
                .filter(|b| b.class == class)
                .map(|b| b.ratio)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(BenchmarkClass::DataIndependent) > avg(BenchmarkClass::DataDependent));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = bcet_ratios().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), bcet_ratios().len());
    }

    #[test]
    fn covers_the_papers_sweep_range() {
        // Figure 8 sweeps BCET/WCET from 0.1 to 1.0; the Figure 1 data
        // should span (most of) that range.
        let data = bcet_ratios();
        let min = data.iter().map(|b| b.ratio).fold(f64::MAX, f64::min);
        let max = data.iter().map(|b| b.ratio).fold(f64::MIN, f64::max);
        assert!(min <= 0.15);
        assert!(max >= 0.9);
    }
}
