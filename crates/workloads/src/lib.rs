//! # lpfps-workloads
//!
//! The hard-real-time task sets evaluated in *Power Conscious Fixed
//! Priority Scheduling for Hard Real-Time Systems* (Shin & Choi, DAC
//! 1999), reconstructed from the paper's Table 2 and the primary sources
//! it cites, plus the paper's motivating data:
//!
//! * [`table1`] — the 3-task example driving Figures 2, 3 and 5;
//! * [`avionics`] — the Generic Avionics Platform (Locke et al., RTSS '91),
//!   17 tasks, WCETs 1–9 ms;
//! * [`ins`] — the inertial navigation system (Burns/Tindell/Wellings),
//!   6 tasks, WCETs 1 180–100 280 µs, U = 0.736 dominated by one
//!   0.472-utilization task — the paper's best case for LPFPS;
//! * [`flight_control`] — the PERTS flight controller (Liu et al.),
//!   6 tasks, WCETs 10–60 ms;
//! * [`cnc`] — the CNC machine controller (Kim et al., RTSS '96),
//!   8 tasks, WCETs 35–720 µs — short enough that the 10 µs voltage
//!   transition matters;
//! * [`bcet_ratios`] — the BCET/WCET spread of Figure 1 (Ernst & Ye);
//! * [`WorkloadBuilder`] — seeded `replicate(n)` / `scale_utilization(u)`
//!   derivation of multicore-scale workloads from any of the above.
//!
//! Exact task tables are not printed in the paper; each module documents
//! which constraints are published (task counts, WCET ranges, utilization
//! structure) and how the reconstruction satisfies all of them. Every set
//! is asserted RM-schedulable by exact response-time analysis.
//!
//! # Example
//!
//! ```
//! use lpfps_tasks::analysis::rta_schedulable;
//!
//! for ts in lpfps_workloads::applications() {
//!     assert!(rta_schedulable(&ts), "{} is schedulable", ts.name());
//! }
//! ```

mod avionics;
mod bcet_figure1;
mod builder;
mod catalog;
mod cnc;
mod flight;
mod ins;
mod table1;

pub use avionics::{avionics, try_avionics};
pub use bcet_figure1::{bcet_ratios, BcetRatio, BenchmarkClass};
pub use builder::WorkloadBuilder;
pub use catalog::{applications, table2, try_applications, Table2Row};
pub use cnc::{cnc, try_cnc};
pub use flight::{flight_control, try_flight_control};
pub use ins::{ins, try_ins};
pub use table1::{table1, try_table1};
