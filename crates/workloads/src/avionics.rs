//! The Avionics workload: the Generic Avionics Platform (GAP).
//!
//! Source: C. D. Locke, D. Vogel, T. Mesler, *Building a predictable
//! avionics platform in Ada: a case study*, RTSS 1991 — the citation
//! behind the paper's "Avionics" row in Table 2 (17 tasks, WCETs
//! 1 000–9 000 µs).
//!
//! The 16 periodic tasks below are the GAP table as usually cited in the
//! fixed-priority literature; the 17th (equipment status, 1 ms @ 1 s) is
//! added from GAP's 1-second status group to match the paper's task count.
//! WCETs span exactly 1–9 ms as Table 2 states; total utilization is
//! about 0.85.

use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// Builds the 17-task GAP avionics set with rate-monotonic priorities.
///
/// # Examples
///
/// ```
/// let ts = lpfps_workloads::avionics();
/// assert_eq!(ts.len(), 17);
/// let (lo, hi) = ts.wcet_range();
/// assert_eq!(lo, lpfps_tasks::time::Dur::from_ms(1));
/// assert_eq!(hi, lpfps_tasks::time::Dur::from_ms(9));
/// ```
pub fn avionics() -> TaskSet {
    match try_avionics() {
        Ok(ts) => ts,
        // Unreachable: the constants below are validated by this module's
        // tests and the doctest above.
        Err(e) => unreachable!("the GAP avionics constants are valid: {e}"),
    }
}

/// Fallible counterpart of [`avionics`]: builds the set through the validating
/// constructors, so the catalog is provably panic-free end to end.
///
/// # Errors
///
/// Returns the [`TaskSetError`] naming the violated rule (never fires for
/// the constants encoded here).
pub fn try_avionics() -> Result<TaskSet, TaskSetError> {
    // (name, period ms, wcet ms)
    let params: [(&str, u64, u64); 17] = [
        ("radar_tracking_filter", 25, 2),
        ("rwr_contact_mgmt", 25, 5),
        ("data_bus_poll", 40, 1),
        ("weapon_aiming", 50, 3),
        ("radar_target_update", 50, 5),
        ("nav_update", 59, 8),
        ("display_graphic", 80, 9),
        ("display_hook_update", 80, 2),
        ("tracking_target_update", 100, 5),
        ("weapon_release", 200, 3),
        ("nav_steering_cmds", 200, 3),
        ("display_stores_update", 200, 1),
        ("display_keyset", 200, 1),
        ("display_status_update", 200, 3),
        ("bet_e_status_update", 1000, 1),
        ("nav_status", 1000, 1),
        ("equipment_status", 1000, 1),
    ];
    let tasks = params
        .iter()
        .map(|&(name, t, c)| Task::validated(name, Dur::from_ms(t), Dur::from_ms(c)))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::try_rate_monotonic("avionics", tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::rta_schedulable;

    #[test]
    fn matches_table2_summary() {
        let ts = avionics();
        assert_eq!(ts.len(), 17);
        let (lo, hi) = ts.wcet_range();
        assert_eq!(lo, Dur::from_us(1_000));
        assert_eq!(hi, Dur::from_us(9_000));
    }

    #[test]
    fn utilization_is_high_but_feasible() {
        let u = avionics().utilization();
        assert!(u > 0.80 && u < 0.90, "GAP utilization {u}");
    }

    #[test]
    fn rate_monotonic_schedulable() {
        assert!(rta_schedulable(&avionics()));
    }

    #[test]
    fn task_names_are_unique() {
        let ts = avionics();
        let mut names: Vec<&str> = ts.iter().map(|(_, t, _)| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }
}
