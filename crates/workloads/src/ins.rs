//! The INS workload: an inertial navigation system.
//!
//! Source: A. Burns, K. Tindell, A. Wellings, *Effective analysis for
//! engineering real-time fixed priority schedulers*, IEEE TSE 1995 — the
//! citation behind the paper's "INS" row of Table 2 (6 tasks, WCETs
//! 1 180–100 280 µs).
//!
//! The paper's §4 pins down the structure precisely: total utilization
//! **0.736**, dominated by one task at utilization **0.472** with period
//! **2 500 µs** (the attitude updater — highest rate, hence highest RM
//! priority), the other five spread between 0.02 and 0.1 with much longer
//! periods. The reconstruction below satisfies *all* of those published
//! constraints simultaneously, including the exact WCET range of Table 2:
//!
//! | task             | C (µs)  | T (µs)    | U       |
//! |------------------|---------|-----------|---------|
//! | attitude_updater | 1 180   | 2 500     | 0.472   |
//! | velocity_updater | 4 000   | 40 000    | 0.100   |
//! | attitude_sender  | 4 000   | 62 500    | 0.064   |
//! | navigation_update| 6 000   | 200 000   | 0.030   |
//! | position_sender  | 20 000  | 1 000 000 | 0.020   |
//! | status_sender    | 100 280 | 2 000 000 | 0.05014 |
//!
//! Total: 0.73614. Hyperperiod: 2 s.
//!
//! This is the workload where the paper reports LPFPS's best result (up to
//! 62 % power reduction): the run queue is empty most of the time while
//! the heavily loaded attitude updater runs, giving DVS constant traction.

use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// Builds the 6-task INS set with rate-monotonic priorities.
///
/// # Examples
///
/// ```
/// let ts = lpfps_workloads::ins();
/// assert_eq!(ts.len(), 6);
/// assert!((ts.utilization() - 0.736).abs() < 0.001);
/// ```
pub fn ins() -> TaskSet {
    match try_ins() {
        Ok(ts) => ts,
        // Unreachable: the constants below are validated by this module's
        // tests and the doctest above.
        Err(e) => unreachable!("the INS constants are valid: {e}"),
    }
}

/// Fallible counterpart of [`ins`]: builds the set through the validating
/// constructors, so the catalog is provably panic-free end to end.
///
/// # Errors
///
/// Returns the [`TaskSetError`] naming the violated rule (never fires for
/// the constants encoded here).
pub fn try_ins() -> Result<TaskSet, TaskSetError> {
    let params: [(&str, u64, u64); 6] = [
        ("attitude_updater", 2_500, 1_180),
        ("velocity_updater", 40_000, 4_000),
        ("attitude_sender", 62_500, 4_000),
        ("navigation_update", 200_000, 6_000),
        ("position_sender", 1_000_000, 20_000),
        ("status_sender", 2_000_000, 100_280),
    ];
    let tasks = params
        .iter()
        .map(|&(name, t, c)| Task::validated(name, Dur::from_us(t), Dur::from_us(c)))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::try_rate_monotonic("ins", tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::{hyperperiod, rta_schedulable};
    use lpfps_tasks::task::TaskId;

    #[test]
    fn matches_table2_summary() {
        let ts = ins();
        assert_eq!(ts.len(), 6);
        let (lo, hi) = ts.wcet_range();
        assert_eq!(lo, Dur::from_us(1_180));
        assert_eq!(hi, Dur::from_us(100_280));
    }

    #[test]
    fn matches_the_papers_utilization_structure() {
        let ts = ins();
        assert!(
            (ts.utilization() - 0.736).abs() < 0.001,
            "U = {}",
            ts.utilization()
        );
        // Dominant task: U = 0.472 at T = 2500 us, highest priority.
        let dom = ts.task(TaskId(0));
        assert!((dom.utilization() - 0.472).abs() < 1e-9);
        assert_eq!(dom.period(), Dur::from_us(2_500));
        assert_eq!(ts.priority(TaskId(0)).level(), 0);
        // The rest sit in [0.02, 0.1].
        for (id, t, _) in ts.iter().skip(1) {
            let u = t.utilization();
            assert!((0.02..=0.1).contains(&u), "{id} utilization {u}");
        }
    }

    #[test]
    fn rate_monotonic_schedulable() {
        assert!(rta_schedulable(&ins()));
    }

    #[test]
    fn hyperperiod_is_two_seconds() {
        assert_eq!(hyperperiod(&ins()), Some(Dur::from_secs(2)));
    }
}
