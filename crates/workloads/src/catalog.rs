//! The workload catalog: every application of the paper's Table 2 in one
//! place, with its summary row.

use crate::{
    avionics, cnc, flight_control, ins, try_avionics, try_cnc, try_flight_control, try_ins,
};
use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Application name as printed in the paper.
    pub application: String,
    /// Number of tasks.
    pub tasks: usize,
    /// Smallest WCET.
    pub wcet_min: Dur,
    /// Largest WCET.
    pub wcet_max: Dur,
}

/// All four applications of the paper's evaluation, in Table 2 order.
///
/// # Examples
///
/// ```
/// let apps = lpfps_workloads::applications();
/// let names: Vec<&str> = apps.iter().map(|ts| ts.name()).collect();
/// assert_eq!(names, ["avionics", "ins", "flight_control", "cnc"]);
/// ```
pub fn applications() -> Vec<TaskSet> {
    vec![avionics(), ins(), flight_control(), cnc()]
}

/// Fallible counterpart of [`applications`]: every set is built through
/// the validating constructors, so a defect in the encoded constants
/// surfaces as a typed [`TaskSetError`] instead of a panic.
///
/// # Errors
///
/// Returns the first [`TaskSetError`] any catalog set fails with (never
/// fires for the constants shipped here).
pub fn try_applications() -> Result<Vec<TaskSet>, TaskSetError> {
    Ok(vec![
        try_avionics()?,
        try_ins()?,
        try_flight_control()?,
        try_cnc()?,
    ])
}

/// The Table 2 summary computed from the encoded task sets.
pub fn table2() -> Vec<Table2Row> {
    applications()
        .into_iter()
        .map(|ts| {
            let (wcet_min, wcet_max) = ts.wcet_range();
            Table2Row {
                application: ts.name().to_string(),
                tasks: ts.len(),
                wcet_min,
                wcet_max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let rows = table2();
        let expect = [
            ("avionics", 17usize, 1_000u64, 9_000u64),
            ("ins", 6, 1_180, 100_280),
            ("flight_control", 6, 10_000, 60_000),
            ("cnc", 8, 35, 720),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, (name, n, lo, hi)) in rows.iter().zip(expect) {
            assert_eq!(row.application, name);
            assert_eq!(row.tasks, n, "{name} task count");
            assert_eq!(row.wcet_min, Dur::from_us(lo), "{name} min WCET");
            assert_eq!(row.wcet_max, Dur::from_us(hi), "{name} max WCET");
        }
    }

    #[test]
    fn fallible_catalog_matches_the_infallible_one() {
        let validated = try_applications().expect("the catalog constants are valid");
        for (a, b) in applications().iter().zip(&validated) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.tasks(), b.tasks());
        }
    }

    #[test]
    fn all_applications_are_rm_schedulable() {
        for ts in applications() {
            assert!(
                lpfps_tasks::analysis::rta_schedulable(&ts),
                "{} must be schedulable",
                ts.name()
            );
        }
    }

    #[test]
    fn mission_critical_sets_have_higher_utilization_than_cnc() {
        let apps = applications();
        let util = |name: &str| {
            apps.iter()
                .find(|ts| ts.name() == name)
                .map(TaskSet::utilization)
                .unwrap()
        };
        assert!(util("avionics") > util("cnc"));
        assert!(util("ins") > util("cnc"));
        assert!(util("flight_control") > util("cnc"));
    }
}
