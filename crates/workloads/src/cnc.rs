//! The CNC workload: a computerized numerical control machine controller.
//!
//! Source: N. Kim, M. Ryu, S. Hong, M. Saksena, C. Choi, H. Shin, *Visual
//! assessment of a real-time system design: a case study on a CNC
//! controller*, RTSS 1996 — the citation behind the paper's "CNC" row of
//! Table 2 (8 tasks, WCETs 35–720 µs).
//!
//! The controller drives two servo axes from interpolated reference
//! positions at millisecond-scale loop rates. The reconstruction below
//! matches Table 2's counts and WCET range exactly and keeps the
//! property the paper highlights for CNC: with WCETs of tens to hundreds
//! of microseconds, the 10 µs voltage-transition delay is *not*
//! negligible, so LPFPS has the least headroom here (Figure 8(d) shows
//! its smallest gain).

use lpfps_tasks::error::TaskSetError;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

/// Builds the 8-task CNC set with rate-monotonic priorities.
///
/// # Examples
///
/// ```
/// let ts = lpfps_workloads::cnc();
/// assert_eq!(ts.len(), 8);
/// let (lo, hi) = ts.wcet_range();
/// assert_eq!(lo, lpfps_tasks::time::Dur::from_us(35));
/// assert_eq!(hi, lpfps_tasks::time::Dur::from_us(720));
/// ```
pub fn cnc() -> TaskSet {
    match try_cnc() {
        Ok(ts) => ts,
        // Unreachable: the constants below are validated by this module's
        // tests and the doctest above.
        Err(e) => unreachable!("the CNC constants are valid: {e}"),
    }
}

/// Fallible counterpart of [`cnc`]: builds the set through the validating
/// constructors, so the catalog is provably panic-free end to end.
///
/// # Errors
///
/// Returns the [`TaskSetError`] naming the violated rule (never fires for
/// the constants encoded here).
pub fn try_cnc() -> Result<TaskSet, TaskSetError> {
    let params: [(&str, u64, u64); 8] = [
        ("position_x", 2_400, 35),
        ("position_y", 2_400, 40),
        ("servo_control_x", 2_400, 165),
        ("servo_control_y", 2_400, 165),
        ("interpolator", 4_800, 570),
        ("status_monitor", 4_800, 570),
        ("reference_generator", 9_600, 720),
        ("command_display", 9_600, 720),
    ];
    let tasks = params
        .iter()
        .map(|&(name, t, c)| Task::validated(name, Dur::from_us(t), Dur::from_us(c)))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::try_rate_monotonic("cnc", tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_tasks::analysis::{hyperperiod, rta_schedulable};

    #[test]
    fn matches_table2_summary() {
        let ts = cnc();
        assert_eq!(ts.len(), 8);
        let (lo, hi) = ts.wcet_range();
        assert_eq!(lo, Dur::from_us(35));
        assert_eq!(hi, Dur::from_us(720));
    }

    #[test]
    fn utilization_is_moderate() {
        let u = cnc().utilization();
        assert!(u > 0.5 && u < 0.6, "U = {u}");
    }

    #[test]
    fn rate_monotonic_schedulable() {
        assert!(rta_schedulable(&cnc()));
    }

    #[test]
    fn hyperperiod_is_under_10ms() {
        assert_eq!(hyperperiod(&cnc()), Some(Dur::from_us(9_600)));
    }

    #[test]
    fn wcets_are_comparable_to_the_transition_delay() {
        // The property the paper calls out: the 10 us worst-case transition
        // is a significant fraction of these WCETs.
        let ts = cnc();
        let (lo, _) = ts.wcet_range();
        assert!(lo.as_us() < 10 * 10, "shortest WCET {lo} dwarfs the ramp");
    }
}
