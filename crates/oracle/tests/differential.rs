//! The differential harness: the optimized kernel against the naive
//! reference simulator, field for field, over the full workload × policy
//! × fault matrix — plus the sabotage test proving the oracle actually
//! discriminates.

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::SimConfig;
use lpfps_oracle::{first_divergence, oracle_run};
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{avionics, cnc, ins, table1};

/// The differential matrix: every paper workload under the policies that
/// exercise distinct engine paths (plain FPS, power-down only, the full
/// heuristic, and the fault-reactive watchdog).
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Fps,
    PolicyKind::FpsPd,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
];

fn workloads() -> Vec<TaskSet> {
    vec![table1(), avionics(), cnc(), ins()]
}

/// Overrun stream at p = 0.1, the acceptance criterion's fault model.
fn overrun_faults() -> FaultConfig {
    FaultConfig::none()
        .with_seed(7)
        .with_overrun(OverrunFault::clamped(0.1, 0.3, 1.3))
}

fn assert_matches_oracle(ts: &TaskSet, kind: PolicyKind, faults: FaultConfig) {
    let cpu = CpuSpec::arm8();
    let scaled = ts.with_bcet_fraction(0.5);
    // Trace on: the comparison then also covers the per-segment energy
    // stream, not just the integrated report.
    let cfg = SimConfig::new(default_horizon(&scaled))
        .with_seed(42)
        .with_faults(faults)
        .with_trace();
    let engine = run(&scaled, &cpu, kind, &lpfps_tasks::exec::PaperGaussian, &cfg).unwrap();
    let oracle = oracle_run(&scaled, &cpu, kind, &lpfps_tasks::exec::PaperGaussian, &cfg).unwrap();
    if let Some(d) = first_divergence(&engine, &oracle) {
        panic!("{}/{} diverged from the oracle\n{d}", ts.name(), kind);
    }
}

#[test]
fn engine_matches_oracle_fault_free() {
    for ts in workloads() {
        for kind in POLICIES {
            assert_matches_oracle(&ts, kind, FaultConfig::none());
        }
    }
}

#[test]
fn engine_matches_oracle_under_overruns() {
    for ts in workloads() {
        for kind in POLICIES {
            assert_matches_oracle(&ts, kind, overrun_faults());
        }
    }
}

#[test]
fn engine_matches_oracle_on_every_policy_kind() {
    // The remaining kinds (ablations and the static baseline, including
    // its derate-then-rename path) on the motivating example.
    for kind in [
        PolicyKind::LpfpsDvsOnly,
        PolicyKind::LpfpsOptimal,
        PolicyKind::StaticSlowdown,
    ] {
        assert_matches_oracle(&table1(), kind, FaultConfig::none());
        assert_matches_oracle(&table1(), kind, overrun_faults());
    }
}

#[test]
fn engine_matches_oracle_with_kernel_overheads() {
    use lpfps_tasks::time::Dur;
    // Context-switch + slow-down overheads and a tick-driven kernel walk
    // the `pending_overhead` and quantization paths.
    let cpu = CpuSpec::arm8();
    let scaled = table1().with_bcet_fraction(0.5);
    let cfg = SimConfig::new(default_horizon(&scaled))
        .with_seed(42)
        .with_context_switch(Dur::from_ns(500))
        .with_ratio_overhead(Dur::from_ns(800))
        .with_tick(Dur::from_us(1))
        .with_trace();
    for kind in POLICIES {
        let engine = run(&scaled, &cpu, kind, &lpfps_tasks::exec::PaperGaussian, &cfg).unwrap();
        let oracle =
            oracle_run(&scaled, &cpu, kind, &lpfps_tasks::exec::PaperGaussian, &cfg).unwrap();
        if let Some(d) = first_divergence(&engine, &oracle) {
            panic!("table1/{kind} with overheads diverged from the oracle\n{d}");
        }
    }
}

/// The probed engine against the oracle: re-runs the full differential
/// matrix (both fault halves, every distinct-path policy) through
/// [`lpfps::driver::run_probed_in`] with a recording [`JobRecorder`]
/// attached. The probe must be invisible — field-for-field agreement with
/// the naive reference simulator, exactly as in the unprobed matrix — and
/// non-vacuously live: it must have counted every completion the report
/// integrated.
#[test]
fn probed_engine_matches_oracle_across_the_matrix() {
    use lpfps::driver::run_probed_in;
    use lpfps_kernel::engine::SimWorkspace;
    use lpfps_obs::JobRecorder;
    let cpu = CpuSpec::arm8();
    let mut ws = SimWorkspace::new();
    for ts in workloads() {
        for kind in POLICIES {
            for faults in [FaultConfig::none(), overrun_faults()] {
                let scaled = ts.with_bcet_fraction(0.5);
                let cfg = SimConfig::new(default_horizon(&scaled))
                    .with_seed(42)
                    .with_faults(faults)
                    .with_trace();
                let exec = lpfps_tasks::exec::PaperGaussian;
                let mut rec = JobRecorder::new();
                let engine =
                    run_probed_in(&scaled, &cpu, kind, &exec, &cfg, &mut ws, &mut rec).unwrap();
                let oracle = oracle_run(&scaled, &cpu, kind, &exec, &cfg).unwrap();
                if let Some(d) = first_divergence(&engine, &oracle) {
                    panic!(
                        "{}/{kind} diverged from the oracle with a probe attached\n{d}",
                        ts.name()
                    );
                }
                assert_eq!(
                    rec.response_ns().count(),
                    engine.counters.completions,
                    "{}/{kind}: the probe missed completions the report integrated",
                    ts.name()
                );
            }
        }
    }
}

/// Error paths must be as differential as success paths: the engine and
/// the oracle reject the same inputs with the *same* typed error, and a
/// budget cut-off trips at the same event with the same diagnostic.
#[test]
fn engine_and_oracle_reject_identically() {
    let cpu = CpuSpec::arm8();
    let ts = table1();
    let exec = lpfps_tasks::exec::AlwaysWcet;

    // Invalid config: zero horizon.
    let zero = SimConfig::new(lpfps_tasks::time::Dur::ZERO);
    let e = run(&ts, &cpu, PolicyKind::Fps, &exec, &zero).unwrap_err();
    let o = oracle_run(&ts, &cpu, PolicyKind::Fps, &exec, &zero).unwrap_err();
    assert_eq!(e, o);
    assert_eq!(e.kind(), "invalid-config");

    // Malformed task set smuggled past the constructors via Deserialize.
    let json = serde_json::to_string(&ts).unwrap();
    let bad: TaskSet =
        serde_json::from_str(&json.replace("\"period\":50000", "\"period\":0")).unwrap();
    let cfg = SimConfig::new(default_horizon(&ts));
    let e = run(&bad, &cpu, PolicyKind::Lpfps, &exec, &cfg).unwrap_err();
    let o = oracle_run(&bad, &cpu, PolicyKind::Lpfps, &exec, &cfg).unwrap_err();
    assert_eq!(e, o);
    assert_eq!(e.kind(), "invalid-task-set");

    // A budget cut-off carries an identical partial-progress diagnostic
    // on both sides — same event, same sim time, same segment count.
    let tight = SimConfig::new(default_horizon(&ts)).with_max_events(25);
    let e = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &tight).unwrap_err();
    let o = oracle_run(&ts, &cpu, PolicyKind::Lpfps, &exec, &tight).unwrap_err();
    assert_eq!(e, o);
    assert_eq!(e.kind(), "budget-exhausted");
}

/// The non-vacuity proof: an engine with one cache-invalidation site
/// disabled (the dispatch site, via the test-only
/// `SimConfig::with_stale_dispatch_cache` hook) must diverge from the
/// oracle, and the diff must say where.
#[test]
fn sabotaged_event_cache_is_caught() {
    let cpu = CpuSpec::arm8();
    let ts = table1();
    let cfg = SimConfig::new(default_horizon(&ts)).with_trace();
    let sabotaged_cfg = cfg.clone().with_stale_dispatch_cache();
    let sabotaged = run(
        &ts,
        &cpu,
        PolicyKind::Fps,
        &lpfps_tasks::exec::AlwaysWcet,
        &sabotaged_cfg,
    )
    .unwrap();
    let oracle = oracle_run(
        &ts,
        &cpu,
        PolicyKind::Fps,
        &lpfps_tasks::exec::AlwaysWcet,
        &cfg,
    )
    .unwrap();
    let d = first_divergence(&sabotaged, &oracle)
        .expect("a stale dispatch-time event cache must produce an observable divergence");
    // The diagnostic must locate a concrete field, not just say "differs".
    assert!(d.path.starts_with("report."), "unexpected path {}", d.path);
    assert_ne!(d.left, d.right);
}
