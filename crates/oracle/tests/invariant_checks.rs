//! The invariant checker against real kernel traces: clean runs must be
//! violation-free, doctored traces must not be.

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps::{simulate, RatioLogger};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::SimConfig;
use lpfps_kernel::report::SimReport;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_oracle::{check_report, check_theorem1, effective_cpu};
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{avionics, cnc, ins, table1};

fn traced(ts: &TaskSet, kind: PolicyKind, faults: FaultConfig) -> (TaskSet, SimReport) {
    let scaled = ts.with_bcet_fraction(0.5);
    let cfg = SimConfig::new(default_horizon(&scaled))
        .with_seed(42)
        .with_faults(faults)
        .with_trace();
    let report = run(
        &scaled,
        &CpuSpec::arm8(),
        kind,
        &lpfps_tasks::exec::PaperGaussian,
        &cfg,
    )
    .unwrap();
    (scaled, report)
}

#[test]
fn clean_runs_satisfy_every_invariant() {
    let overrun = FaultConfig::none()
        .with_seed(7)
        .with_overrun(OverrunFault::clamped(0.1, 0.3, 1.3));
    for ts in [table1(), avionics(), cnc(), ins()] {
        for kind in [
            PolicyKind::Fps,
            PolicyKind::FpsPd,
            PolicyKind::Lpfps,
            PolicyKind::LpfpsWatchdog,
        ] {
            for faults in [FaultConfig::none(), overrun] {
                let (scaled, report) = traced(&ts, kind, faults);
                let cpu = effective_cpu(&scaled, &CpuSpec::arm8(), &report.policy);
                let violations = check_report(&scaled, &cpu, &report);
                assert!(
                    violations.is_empty(),
                    "{}/{kind}: {} violations, first: {}",
                    ts.name(),
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn static_baseline_checks_against_its_derated_spec() {
    let (scaled, report) = traced(&table1(), PolicyKind::StaticSlowdown, FaultConfig::none());
    let cpu = effective_cpu(&scaled, &CpuSpec::arm8(), &report.policy);
    let violations = check_report(&scaled, &cpu, &report);
    assert!(violations.is_empty(), "first: {}", violations[0]);
}

/// Rebuilds a trace with `f` applied to every `(time, event)` pair.
fn doctor(trace: &Trace, mut f: impl FnMut(usize, TraceEvent) -> TraceEvent) -> Trace {
    let mut out = Trace::new();
    for (i, (t, ev)) in trace.iter().enumerate() {
        out.push(t, f(i, ev));
    }
    out
}

fn lpfps_table1_traced() -> (TaskSet, SimReport) {
    traced(&table1(), PolicyKind::Lpfps, FaultConfig::none())
}

#[test]
fn corrupted_segment_power_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    let mut hit = false;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::EnergySegment { state, power, dur } if !hit && power > 0.0 => {
            hit = true;
            TraceEvent::EnergySegment {
                state,
                power: power * 1.01,
                dur,
            }
        }
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    // The inflated segment breaks both the power-model check and the
    // energy replay.
    assert!(violations.iter().any(|v| v.invariant == "segment-power"));
    assert!(violations.iter().any(|v| v.invariant == "energy-replay"));
}

#[test]
fn corrupted_counters_are_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    report.counters.dispatches += 1;
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "counter-consistency" && v.detail.contains("dispatches")),
        "got: {violations:?}"
    );
}

#[test]
fn out_of_priority_dispatch_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    // Retarget every dispatch of the highest-priority task (tau1, TaskId 0)
    // to the lowest-priority one while tau1 stays live — a fixed-priority
    // violation the checker must flag.
    use lpfps_tasks::task::TaskId;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::Dispatch {
            task: TaskId(0),
            job,
        } => TraceEvent::Dispatch {
            task: TaskId(2),
            job,
        },
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations.iter().any(|v| v.invariant == "fp-dispatch"),
        "got: {violations:?}"
    );
}

#[test]
fn truncated_segment_tiling_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    let mut shrunk = false;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::EnergySegment { state, power, dur }
            if !shrunk && dur > lpfps_tasks::time::Dur::from_ns(1) =>
        {
            shrunk = true;
            TraceEvent::EnergySegment {
                state,
                power,
                dur: dur - lpfps_tasks::time::Dur::from_ns(1),
            }
        }
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations.iter().any(|v| v.invariant == "segment-tiling"),
        "got: {violations:?}"
    );
}

#[test]
fn theorem1_holds_on_every_workload() {
    // Drive the instrumented policy directly so every slow-down decision
    // logs its (r_heu, r_opt) pair, then check Theorem 1 over the stream.
    for ts in [table1(), avionics(), cnc(), ins()] {
        let scaled = ts.with_bcet_fraction(0.5);
        let cfg = SimConfig::new(default_horizon(&scaled)).with_seed(42);
        let mut logger = RatioLogger::new(lpfps::LpfpsPolicy::new());
        simulate(
            &scaled,
            &CpuSpec::arm8(),
            &mut logger,
            &lpfps_tasks::exec::PaperGaussian,
            &cfg,
        )
        .unwrap();
        assert!(
            !logger.samples().is_empty(),
            "{}: no slow-downs sampled",
            ts.name()
        );
        let violations = check_theorem1(logger.samples());
        assert!(
            violations.is_empty(),
            "{}: first: {}",
            ts.name(),
            violations[0]
        );
    }
}

#[test]
fn theorem1_checker_flags_inverted_samples() {
    use lpfps::RatioSample;
    use lpfps_tasks::freq::Freq;
    use lpfps_tasks::time::{Dur, Time};
    let bad = RatioSample {
        now: Time::from_us(10),
        remaining: Dur::from_us(5),
        window: Dur::from_us(10),
        r_heu: 0.4,
        r_opt: 0.5,
        freq: Freq::from_mhz(50),
    };
    let violations = check_theorem1(&[bad]);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].invariant, "theorem1");
}
