//! The invariant checker against real kernel traces: clean runs must be
//! violation-free, doctored traces must not be.

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps::{simulate, RatioLogger};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::SimConfig;
use lpfps_kernel::report::SimReport;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_oracle::{check_report, check_theorem1, effective_cpu};
use lpfps_tasks::taskset::TaskSet;
use lpfps_workloads::{avionics, cnc, ins, table1};

fn traced(ts: &TaskSet, kind: PolicyKind, faults: FaultConfig) -> (TaskSet, SimReport) {
    let scaled = ts.with_bcet_fraction(0.5);
    let cfg = SimConfig::new(default_horizon(&scaled))
        .with_seed(42)
        .with_faults(faults)
        .with_trace();
    let report = run(
        &scaled,
        &CpuSpec::arm8(),
        kind,
        &lpfps_tasks::exec::PaperGaussian,
        &cfg,
    )
    .unwrap();
    (scaled, report)
}

#[test]
fn clean_runs_satisfy_every_invariant() {
    let overrun = FaultConfig::none()
        .with_seed(7)
        .with_overrun(OverrunFault::clamped(0.1, 0.3, 1.3));
    for ts in [table1(), avionics(), cnc(), ins()] {
        for kind in [
            PolicyKind::Fps,
            PolicyKind::FpsPd,
            PolicyKind::Lpfps,
            PolicyKind::LpfpsWatchdog,
        ] {
            for faults in [FaultConfig::none(), overrun] {
                let (scaled, report) = traced(&ts, kind, faults);
                let cpu = effective_cpu(&scaled, &CpuSpec::arm8(), &report.policy);
                let violations = check_report(&scaled, &cpu, &report);
                assert!(
                    violations.is_empty(),
                    "{}/{kind}: {} violations, first: {}",
                    ts.name(),
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

/// Preempt-at-completion tie: when a higher-priority release lands at
/// the very instant the running job retires, the kernel records a
/// `Complete` + `Dispatch` pair — never a `Preempt` — and the Gantt
/// reconstruction of that trace must agree with the trace checker:
/// zero violations, non-overlapping segments, exact busy attribution.
#[test]
fn gantt_agrees_with_the_checker_on_preempt_at_completion_ties() {
    use lpfps_kernel::gantt::Gantt;
    use lpfps_tasks::task::{Task, TaskId};
    use lpfps_tasks::time::{Dur, Time};
    // hi releases at t = 50 us exactly as lo retires its 40 us of work
    // (hi 0..10, lo 10..50): a tie at every hi period boundary.
    let ts = TaskSet::rate_monotonic(
        "tie",
        vec![
            Task::new("hi", Dur::from_us(50), Dur::from_us(10)),
            Task::new("lo", Dur::from_us(100), Dur::from_us(40)),
        ],
    );
    let cfg = SimConfig::new(Dur::from_us(200)).with_trace();
    let report = run(
        &ts,
        &CpuSpec::arm8(),
        PolicyKind::Fps,
        &lpfps_tasks::exec::AlwaysWcet,
        &cfg,
    )
    .unwrap();
    let trace = report.trace.as_ref().unwrap();

    // The tie is resolved as completion-then-dispatch, not preemption.
    assert!(
        trace
            .iter()
            .all(|(_, e)| !matches!(e, TraceEvent::Preempt { .. })),
        "a completion tie must not be recorded as a preemption"
    );
    let at_50: Vec<TraceEvent> = trace
        .iter()
        .filter(|&(at, _)| at == Time::from_us(50))
        .map(|(_, e)| e)
        .collect();
    assert!(at_50.iter().any(|e| matches!(
        e,
        TraceEvent::Complete {
            task: TaskId(1),
            ..
        }
    )));
    assert!(at_50.iter().any(|e| matches!(
        e,
        TraceEvent::Dispatch {
            task: TaskId(0),
            ..
        }
    )));

    // The checker accepts the trace...
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(violations.is_empty(), "first: {}", violations[0]);

    // ...and the Gantt built from it is overlap-free with exact busy
    // attribution: 4 x 10 us of hi and 2 x 40 us of lo over 200 us.
    let g = Gantt::from_trace(trace, Time::from_us(200));
    for pair in g.segments().windows(2) {
        assert!(pair[0].to <= pair[1].from, "{pair:?} overlap at the tie");
    }
    assert_eq!(g.task_busy(TaskId(0)), Dur::from_us(40));
    assert_eq!(g.task_busy(TaskId(1)), Dur::from_us(80));
}

#[test]
fn static_baseline_checks_against_its_derated_spec() {
    let (scaled, report) = traced(&table1(), PolicyKind::StaticSlowdown, FaultConfig::none());
    let cpu = effective_cpu(&scaled, &CpuSpec::arm8(), &report.policy);
    let violations = check_report(&scaled, &cpu, &report);
    assert!(violations.is_empty(), "first: {}", violations[0]);
}

/// Rebuilds a trace with `f` applied to every `(time, event)` pair.
fn doctor(trace: &Trace, mut f: impl FnMut(usize, TraceEvent) -> TraceEvent) -> Trace {
    let mut out = Trace::new();
    for (i, (t, ev)) in trace.iter().enumerate() {
        out.push(t, f(i, ev));
    }
    out
}

fn lpfps_table1_traced() -> (TaskSet, SimReport) {
    traced(&table1(), PolicyKind::Lpfps, FaultConfig::none())
}

#[test]
fn corrupted_segment_power_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    let mut hit = false;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::EnergySegment { state, power, dur } if !hit && power > 0.0 => {
            hit = true;
            TraceEvent::EnergySegment {
                state,
                power: power * 1.01,
                dur,
            }
        }
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    // The inflated segment breaks both the power-model check and the
    // energy replay.
    assert!(violations.iter().any(|v| v.invariant == "segment-power"));
    assert!(violations.iter().any(|v| v.invariant == "energy-replay"));
}

#[test]
fn corrupted_counters_are_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    report.counters.dispatches += 1;
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "counter-consistency" && v.detail.contains("dispatches")),
        "got: {violations:?}"
    );
}

#[test]
fn out_of_priority_dispatch_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    // Retarget every dispatch of the highest-priority task (tau1, TaskId 0)
    // to the lowest-priority one while tau1 stays live — a fixed-priority
    // violation the checker must flag.
    use lpfps_tasks::task::TaskId;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::Dispatch {
            task: TaskId(0),
            job,
        } => TraceEvent::Dispatch {
            task: TaskId(2),
            job,
        },
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations.iter().any(|v| v.invariant == "fp-dispatch"),
        "got: {violations:?}"
    );
}

#[test]
fn truncated_segment_tiling_is_detected() {
    let (ts, mut report) = lpfps_table1_traced();
    let trace = report.trace.take().expect("traced");
    let mut shrunk = false;
    report.trace = Some(doctor(&trace, |_, ev| match ev {
        TraceEvent::EnergySegment { state, power, dur }
            if !shrunk && dur > lpfps_tasks::time::Dur::from_ns(1) =>
        {
            shrunk = true;
            TraceEvent::EnergySegment {
                state,
                power,
                dur: dur - lpfps_tasks::time::Dur::from_ns(1),
            }
        }
        ev => ev,
    }));
    let violations = check_report(&ts, &CpuSpec::arm8(), &report);
    assert!(
        violations.iter().any(|v| v.invariant == "segment-tiling"),
        "got: {violations:?}"
    );
}

#[test]
fn theorem1_holds_on_every_workload() {
    // Drive the instrumented policy directly so every slow-down decision
    // logs its (r_heu, r_opt) pair, then check Theorem 1 over the stream.
    for ts in [table1(), avionics(), cnc(), ins()] {
        let scaled = ts.with_bcet_fraction(0.5);
        let cfg = SimConfig::new(default_horizon(&scaled)).with_seed(42);
        let mut logger = RatioLogger::new(lpfps::LpfpsPolicy::new());
        simulate(
            &scaled,
            &CpuSpec::arm8(),
            &mut logger,
            &lpfps_tasks::exec::PaperGaussian,
            &cfg,
        )
        .unwrap();
        assert!(
            !logger.samples().is_empty(),
            "{}: no slow-downs sampled",
            ts.name()
        );
        let violations = check_theorem1(logger.samples());
        assert!(
            violations.is_empty(),
            "{}: first: {}",
            ts.name(),
            violations[0]
        );
    }
}

#[test]
fn theorem1_checker_flags_inverted_samples() {
    use lpfps::RatioSample;
    use lpfps_tasks::freq::Freq;
    use lpfps_tasks::time::{Dur, Time};
    let bad = RatioSample {
        now: Time::from_us(10),
        remaining: Dur::from_us(5),
        window: Dur::from_us(10),
        r_heu: 0.4,
        r_opt: 0.5,
        freq: Freq::from_mhz(50),
    };
    let violations = check_theorem1(&[bad]);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].invariant, "theorem1");
}
