//! Policy-kind dispatch for the oracle, mirroring [`lpfps::driver::run`].
//!
//! The driver maps a [`PolicyKind`] onto a concrete policy value (and, for
//! the static baseline, a derated processor). The oracle must make the
//! *same* mapping decisions — a divergence should only ever implicate the
//! simulation engines, never the harness — so this module transcribes
//! `driver::run_in` onto [`oracle_simulate`].

use crate::sim::{oracle_simulate, oracle_simulate_for};
use lpfps::baselines::{static_slowdown_spec, EdfFps, Fps};
use lpfps::driver::PolicyKind;
use lpfps::lpfps_policy::LpfpsPolicy;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::discipline::Edf as EdfDispatch;
use lpfps_kernel::engine::SimConfig;
use lpfps_kernel::error::SimError;
use lpfps_kernel::report::SimReport;
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::taskset::TaskSet;

/// The processor spec a policy kind actually runs on: the derated static
/// operating point for `static`, the given spec for everything else.
///
/// The invariant checker compares segment powers against the spec, so
/// callers checking a `static` report must derate first — this helper
/// makes that decision in one place, matching [`lpfps::driver::run`].
pub fn effective_cpu(ts: &TaskSet, cpu: &CpuSpec, policy_name: &str) -> CpuSpec {
    if policy_name == PolicyKind::StaticSlowdown.name() {
        static_slowdown_spec(ts, cpu).unwrap_or_else(|| cpu.clone())
    } else {
        cpu.clone()
    }
}

/// Runs one experiment cell through the reference simulator, with the same
/// policy construction as [`lpfps::driver::run`] (including the
/// `StaticSlowdown` derate-then-rename path).
///
/// # Errors
///
/// As [`oracle_simulate`].
pub fn oracle_run(
    ts: &TaskSet,
    cpu: &CpuSpec,
    kind: PolicyKind,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    match kind {
        PolicyKind::Fps => oracle_simulate(ts, cpu, &mut Fps, exec, cfg),
        PolicyKind::FpsPd => {
            oracle_simulate(ts, cpu, &mut LpfpsPolicy::power_down_only(), exec, cfg)
        }
        PolicyKind::LpfpsDvsOnly => {
            oracle_simulate(ts, cpu, &mut LpfpsPolicy::dvs_only(), exec, cfg)
        }
        PolicyKind::Lpfps => oracle_simulate(ts, cpu, &mut LpfpsPolicy::new(), exec, cfg),
        PolicyKind::LpfpsOptimal => {
            oracle_simulate(ts, cpu, &mut LpfpsPolicy::with_optimal_ratio(), exec, cfg)
        }
        PolicyKind::LpfpsWatchdog => oracle_simulate(
            ts,
            cpu,
            &mut LpfpsPolicy::with_watchdog(PolicyKind::DEFAULT_WATCHDOG_COOLDOWN),
            exec,
            cfg,
        ),
        PolicyKind::StaticSlowdown => {
            let derated = static_slowdown_spec(ts, cpu).unwrap_or_else(|| cpu.clone());
            let mut report = oracle_simulate(ts, &derated, &mut Fps, exec, cfg)?;
            report.policy = PolicyKind::StaticSlowdown.name().to_string();
            Ok(report)
        }
        PolicyKind::Edf => oracle_simulate_for::<EdfDispatch>(ts, cpu, &mut EdfFps, exec, cfg),
        PolicyKind::CcEdf => {
            oracle_simulate_for::<EdfDispatch>(ts, cpu, &mut LpfpsPolicy::cc_edf(), exec, cfg)
        }
    }
}
