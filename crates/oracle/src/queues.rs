//! Deliberately naive scheduler queues.
//!
//! The kernel keeps both queues as sorted vectors tuned for its hot path
//! (descending run queue with an O(1) back-pop, an allocation-free due
//! drain). The oracle uses the *dumbest* structures that implement the
//! same abstract semantics — an insertion-ordered `Vec` scanned linearly
//! for the run queue, a `BTreeSet` for the delay queue — so a bug in the
//! kernel's clever ordering cannot be reproduced here by construction.
//!
//! Semantics mirrored exactly:
//!
//! * run queue: pop returns a minimal-key (most urgent) task under the
//!   dispatch discipline's ordering key, and among equal keys the most
//!   recently inserted one (the kernel's back-pop on a stable descending
//!   sort gives LIFO within a key level);
//! * delay queue: due tasks drain in ascending `(release, priority, id)`
//!   order — the `BTreeSet` key is that exact tuple.

use lpfps_kernel::queues::{DelayQueue, RunQueue};
use lpfps_tasks::task::{Priority, TaskId};
use lpfps_tasks::time::Time;
use std::collections::BTreeSet;

/// Insertion-ordered run queue with linear-scan selection, generic over
/// the discipline's urgency key (smaller = more urgent, like the kernel).
#[derive(Debug)]
pub(crate) struct NaiveRunQueue<K = Priority> {
    entries: Vec<(TaskId, K)>,
}

impl<K> Default for NaiveRunQueue<K> {
    fn default() -> Self {
        NaiveRunQueue {
            entries: Vec::new(),
        }
    }
}

impl<K: Copy + Ord> NaiveRunQueue<K> {
    pub fn new() -> Self {
        NaiveRunQueue::default()
    }

    /// # Panics
    ///
    /// Panics if the task is already queued (same contract as the kernel).
    pub fn insert(&mut self, task: TaskId, key: K) {
        assert!(
            !self.entries.iter().any(|&(t, _)| t == task),
            "task {task} is already in the run queue"
        );
        self.entries.push((task, key));
    }

    /// Index of the task `pop` would return: minimal key, most recently
    /// inserted among equals (only a strictly smaller incumbent survives
    /// the scan, so ties settle on the latest index).
    fn best_index(&self) -> Option<usize> {
        let mut best: Option<(usize, K)> = None;
        for (i, &(_, k)) in self.entries.iter().enumerate() {
            best = match best {
                Some((bi, bk)) if bk < k => Some((bi, bk)),
                _ => Some((i, k)),
            };
        }
        best.map(|(i, _)| i)
    }

    pub fn head_key(&self) -> Option<K> {
        self.best_index().map(|i| self.entries[i].1)
    }

    pub fn pop(&mut self) -> Option<TaskId> {
        let i = self.best_index()?;
        Some(self.entries.remove(i).0)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A kernel [`RunQueue`] with the same contents, for the
    /// [`SchedulerContext`](lpfps_kernel::policy::SchedulerContext) view
    /// handed to policies. Inserting in stored (chronological) order
    /// reproduces the kernel queue's LIFO-within-key layout.
    pub fn materialize(&self) -> RunQueue<K> {
        let mut q = RunQueue::new();
        for &(task, key) in &self.entries {
            q.insert(task, key);
        }
        q
    }
}

/// `BTreeSet`-backed delay queue keyed by `(release, priority, id)`.
#[derive(Debug, Default)]
pub(crate) struct NaiveDelayQueue {
    entries: BTreeSet<(Time, Priority, TaskId)>,
}

impl NaiveDelayQueue {
    pub fn new() -> Self {
        NaiveDelayQueue::default()
    }

    /// # Panics
    ///
    /// Panics if the task is already queued.
    pub fn insert(&mut self, task: TaskId, prio: Priority, release: Time) {
        assert!(
            !self.entries.iter().any(|&(_, _, t)| t == task),
            "task {task} is already in the delay queue"
        );
        self.entries.insert((release, prio, task));
    }

    pub fn head_release(&self) -> Option<Time> {
        self.entries.first().map(|&(r, _, _)| r)
    }

    /// Removes every task with `release <= now`, in key order.
    pub fn pop_due(&mut self, now: Time) -> Vec<(TaskId, Time)> {
        let mut due = Vec::new();
        while let Some(&(release, prio, task)) = self.entries.first() {
            if release > now {
                break;
            }
            self.entries.remove(&(release, prio, task));
            due.push((task, release));
        }
        due
    }

    /// A kernel [`DelayQueue`] with the same contents.
    pub fn materialize(&self) -> DelayQueue {
        let mut q = DelayQueue::new();
        for &(release, prio, task) in &self.entries {
            q.insert(task, prio, release);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_queue_matches_kernel_tie_semantics() {
        // Two equal-priority tasks: the most recent insert pops first,
        // exactly like the kernel's back-pop (verified against it).
        let mut naive = NaiveRunQueue::new();
        let mut kernel = RunQueue::new();
        for (t, p) in [(0, 1), (1, 0), (2, 1), (3, 0)] {
            naive.insert(TaskId(t), Priority::new(p));
            kernel.insert(TaskId(t), Priority::new(p));
        }
        loop {
            assert_eq!(naive.head_key(), kernel.head_priority());
            let (a, b) = (naive.pop(), kernel.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn delay_queue_drains_in_kernel_order() {
        let mut naive = NaiveDelayQueue::new();
        let mut kernel = DelayQueue::new();
        let entries = [(0, 0, 500u64), (1, 1, 200), (2, 2, 200), (3, 3, 700)];
        for &(t, p, us) in &entries {
            naive.insert(TaskId(t), Priority::new(p), Time::from_us(us));
            kernel.insert(TaskId(t), Priority::new(p), Time::from_us(us));
        }
        assert_eq!(naive.head_release(), kernel.head_release());
        assert_eq!(
            naive.pop_due(Time::from_us(500)),
            kernel.pop_due(Time::from_us(500))
        );
        assert_eq!(naive.head_release(), kernel.head_release());
    }

    #[test]
    #[should_panic(expected = "already in the run queue")]
    fn duplicate_run_insert_panics() {
        let mut q = NaiveRunQueue::new();
        q.insert(TaskId(0), Priority::new(0));
        q.insert(TaskId(0), Priority::new(1));
    }
}
