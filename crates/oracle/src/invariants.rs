//! Machine-checked trace invariants for the paper's guarantees.
//!
//! [`check_report`] walks a traced [`SimReport`] once per invariant and
//! collects every violation. The invariants are trace-level consequences
//! of the paper's scheduling rules (Figure 4) and of the engine's own
//! contract, so they hold for *any* correct run — fault-free or under an
//! injected fault stream — which makes them a cheap second oracle the
//! sweep runner can sample (`--check`) without paying for a full
//! differential re-simulation.
//!
//! | id | invariant | source |
//! |----|-----------|--------|
//! | `monotone-time` | event timestamps never decrease | trace contract |
//! | `segment-tiling` | energy segments tile `[0, horizon)` exactly, and every event sits on a segment boundary (busy-time conservation) | engine contract |
//! | `energy-replay` | replaying the segments through a fresh [`EnergyMeter`] reproduces the report's energy integral bit-for-bit | engine contract |
//! | `segment-power` | each segment's recorded power equals `CpuSpec::state_power` of its state | Eqs. for the power model |
//! | `fp-dispatch` | a dispatched task is never outranked by a released, unfinished task (fixed-priority order; FP reports) | Fig. 4 L8–L11 |
//! | `edf-dispatch` | a dispatched task is never outranked by a live task with a strictly earlier absolute deadline (EDF reports) | EDF dispatch rule |
//! | `dispatch-at-full-speed` | dispatches happen only with the clock settled at (or just settled to) full speed | Fig. 4 L1–L4 |
//! | `slowdown-solo` | a downward ramp starts only when exactly one job is live | Fig. 4 L16–L19 |
//! | `release-at-full-speed` | a release finding the processor below full speed is flagged by a preceding `TimingViolation` unless the transition resolves at that instant | watchdog contract |
//! | `powerdown-idle` | power-down begins with zero live jobs and wakes before the next release | Fig. 4 L13–L15 |
//! | `ramp-end-matches-start` | every `RampEnd` settles at the target of the latest `RampStart` | CPU model |
//! | `slowdown-at-invocation` | downward ramps are co-stamped with a scheduler invocation (releases, completions, faults, settles); only the speed-up timer may act silently | Fig. 4 (speed changes happen in `schedule()`) |
//! | `counter-consistency` | report counters equal their trace event counts | report contract |
//!
//! Theorem 1 (`r_heu >= r_opt`) is checked separately by
//! [`check_theorem1`] because it needs the policy's internal ratio
//! samples ([`lpfps::RatioLogger`]), not the kernel trace.

use lpfps::RatioSample;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::CpuState;
use lpfps_cpu::EnergyMeter;
use lpfps_kernel::report::SimReport;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};
use std::collections::BTreeSet;
use std::fmt;

/// One invariant violation, anchored to a trace position.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the offending event in the trace (or of the last event,
    /// for end-of-trace invariants).
    pub index: usize,
    /// Simulation time of the offending event.
    pub at: Time,
    /// Stable invariant id (see the module table).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at {} (event #{}): {}",
            self.invariant, self.at, self.index, self.detail
        )
    }
}

/// Checks every trace invariant against a traced report.
///
/// `cpu` must be the processor spec the simulation actually ran on — for
/// the `static` policy that is the derated spec (see
/// [`crate::run::effective_cpu`]).
///
/// An untraced report cannot be checked; that is reported as a violation
/// of its own, not a panic.
pub fn check_report(ts: &TaskSet, cpu: &CpuSpec, report: &SimReport) -> Vec<Violation> {
    let Some(trace) = report.trace.as_ref() else {
        return vec![Violation {
            index: 0,
            at: Time::ZERO,
            invariant: "traced-report",
            detail: "invariant checking requires a traced report (SimConfig::with_trace)"
                .to_string(),
        }];
    };
    let events: Vec<(Time, TraceEvent)> = trace.iter().collect();
    let mut out = Vec::new();
    check_monotone_time(&events, &mut out);
    check_segment_tiling(&events, report.horizon, &mut out);
    check_energy_replay(trace, report, &mut out);
    check_segment_power(&events, cpu, &mut out);
    match report.discipline {
        "edf" => check_edf_dispatch(&events, ts, &mut out),
        _ => check_fp_dispatch(&events, ts, &mut out),
    }
    check_dispatch_at_full_speed(&events, cpu, &mut out);
    check_slowdown_solo(&events, cpu, &mut out);
    check_release_at_full_speed(&events, cpu, &mut out);
    check_powerdown_idle(&events, &mut out);
    check_ramp_end_matches_start(&events, &mut out);
    check_slowdown_at_invocation(&events, cpu, &mut out);
    check_counter_consistency(trace, report, &mut out);
    out
}

/// Checks Theorem 1 over a [`lpfps::RatioLogger`] sample stream: the
/// heuristic slow-down ratio must never undercut the exact requirement.
pub fn check_theorem1(samples: &[RatioSample]) -> Vec<Violation> {
    samples
        .iter()
        .enumerate()
        .filter(|(_, s)| s.r_heu < s.r_opt)
        .map(|(i, s)| Violation {
            index: i,
            at: s.now,
            invariant: "theorem1",
            detail: format!(
                "r_heu {} < r_opt {} (remaining {}, window {})",
                s.r_heu, s.r_opt, s.remaining, s.window
            ),
        })
        .collect()
}

fn violation(
    out: &mut Vec<Violation>,
    index: usize,
    at: Time,
    invariant: &'static str,
    detail: String,
) {
    out.push(Violation {
        index,
        at,
        invariant,
        detail,
    });
}

fn check_monotone_time(events: &[(Time, TraceEvent)], out: &mut Vec<Violation>) {
    for (i, w) in events.windows(2).enumerate() {
        if w[1].0 < w[0].0 {
            violation(
                out,
                i + 1,
                w[1].0,
                "monotone-time",
                format!(
                    "event time {} precedes previous event time {}",
                    w[1].0, w[0].0
                ),
            );
        }
    }
}

fn check_segment_tiling(events: &[(Time, TraceEvent)], horizon: Dur, out: &mut Vec<Violation>) {
    let mut cursor = Time::ZERO;
    for (i, &(t, ev)) in events.iter().enumerate() {
        if t != cursor {
            violation(
                out,
                i,
                t,
                "segment-tiling",
                format!("event off the segment frontier: at {t}, frontier is {cursor}"),
            );
            // Resynchronize so one gap does not cascade into one violation
            // per subsequent event.
            cursor = t;
        }
        if let TraceEvent::EnergySegment { dur, .. } = ev {
            if dur.is_zero() {
                violation(out, i, t, "segment-tiling", "zero-length segment".into());
            }
            cursor += dur;
        }
    }
    let end = Time::ZERO + horizon;
    if cursor != end {
        violation(
            out,
            events.len().saturating_sub(1),
            cursor,
            "segment-tiling",
            format!("segments cover [0, {cursor}) but the horizon ends at {end}"),
        );
    }
}

fn check_energy_replay(trace: &Trace, report: &SimReport, out: &mut Vec<Violation>) {
    let mut meter = EnergyMeter::new();
    for (_, ev) in trace.iter() {
        if let TraceEvent::EnergySegment { state, power, dur } = ev {
            meter.accumulate_with_power(state, power, dur);
        }
    }
    let (Ok(replayed), Ok(recorded)) = (
        serde_json::to_value(&meter),
        serde_json::to_value(&report.energy),
    ) else {
        violation(
            out,
            trace.len().saturating_sub(1),
            Time::ZERO + report.horizon,
            "energy-replay",
            "energy meter failed to serialize for bitwise comparison".to_string(),
        );
        return;
    };
    if replayed != recorded {
        violation(
            out,
            trace.len().saturating_sub(1),
            Time::ZERO + report.horizon,
            "energy-replay",
            format!(
                "replaying the segments yields {} J, the report integrated {} J (bitwise)",
                meter.total_energy(),
                report.energy.total_energy()
            ),
        );
    }
}

fn check_segment_power(events: &[(Time, TraceEvent)], cpu: &CpuSpec, out: &mut Vec<Violation>) {
    for (i, &(t, ev)) in events.iter().enumerate() {
        if let TraceEvent::EnergySegment { state, power, .. } = ev {
            let expected = cpu.state_power(state);
            if power != expected {
                violation(
                    out,
                    i,
                    t,
                    "segment-power",
                    format!("segment in {state} records {power} W, the model gives {expected} W"),
                );
            }
        }
    }
}

/// Live-job bookkeeping shared by several checks: a task is *live* from
/// its `Release` to its `Complete`.
fn live_after(live: &mut BTreeSet<TaskId>, ev: &TraceEvent) {
    match *ev {
        TraceEvent::Release { task, .. } => {
            live.insert(task);
        }
        TraceEvent::Complete { task, .. } => {
            live.remove(&task);
        }
        _ => {}
    }
}

fn check_fp_dispatch(events: &[(Time, TraceEvent)], ts: &TaskSet, out: &mut Vec<Violation>) {
    let mut live: BTreeSet<TaskId> = BTreeSet::new();
    for (i, &(t, ev)) in events.iter().enumerate() {
        if let TraceEvent::Dispatch { task, .. } = ev {
            let prio = ts.priority(task);
            for &other in &live {
                if other != task && ts.priority(other).is_higher_than(prio) {
                    violation(
                        out,
                        i,
                        t,
                        "fp-dispatch",
                        format!("{task} dispatched while higher-priority {other} is live"),
                    );
                }
            }
        }
        live_after(&mut live, &ev);
    }
}

fn check_edf_dispatch(events: &[(Time, TraceEvent)], ts: &TaskSet, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // Absolute deadlines are reconstructed from job indices: the engine
    // stamps `Release` at the *noticed* time (jitter, tick quantization),
    // but assigns deadlines from the nominal arrival, which for job `k`
    // of a periodic task is `phase + k*period`.
    let mut deadlines: BTreeMap<TaskId, Time> = BTreeMap::new();
    for (i, &(t, ev)) in events.iter().enumerate() {
        match ev {
            TraceEvent::Release { task, job } => {
                let spec = ts.task(task);
                let arrival = Time::ZERO + spec.phase() + spec.period() * job;
                deadlines.insert(task, arrival + spec.deadline());
            }
            TraceEvent::Complete { task, .. } => {
                deadlines.remove(&task);
            }
            TraceEvent::Dispatch { task, .. } => {
                let Some(&own) = deadlines.get(&task) else {
                    violation(
                        out,
                        i,
                        t,
                        "edf-dispatch",
                        format!("{task} dispatched with no live job"),
                    );
                    continue;
                };
                for (&other, &d) in &deadlines {
                    if other != task && d < own {
                        violation(
                            out,
                            i,
                            t,
                            "edf-dispatch",
                            format!(
                                "{task} (deadline {own}) dispatched while {other} \
                                 (deadline {d}) is live"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// The processor state implied by the most recent segment before event
/// `i`, if any.
fn prev_segment(events: &[(Time, TraceEvent)], i: usize) -> Option<CpuState> {
    events[..i].iter().rev().find_map(|&(_, ev)| match ev {
        TraceEvent::EnergySegment { state, .. } => Some(state),
        _ => None,
    })
}

/// Same-instant events strictly between the last segment boundary and
/// event `i` (exclusive), in trace order.
fn same_instant_before(
    events: &[(Time, TraceEvent)],
    i: usize,
) -> impl Iterator<Item = &TraceEvent> + '_ {
    let t = events[i].0;
    events[..i]
        .iter()
        .rev()
        .take_while(move |&&(u, _)| u == t)
        .map(|(_, ev)| ev)
}

fn same_instant_after(
    events: &[(Time, TraceEvent)],
    i: usize,
) -> impl Iterator<Item = &TraceEvent> + '_ {
    let t = events[i].0;
    events[i + 1..]
        .iter()
        .take_while(move |&&(u, _)| u == t)
        .map(|(_, ev)| ev)
}

fn check_dispatch_at_full_speed(
    events: &[(Time, TraceEvent)],
    cpu: &CpuSpec,
    out: &mut Vec<Violation>,
) {
    let full = cpu.full_freq();
    for (i, &(t, ev)) in events.iter().enumerate() {
        if !matches!(ev, TraceEvent::Dispatch { .. }) {
            continue;
        }
        let settled_full = match prev_segment(events, i) {
            // Start of time, NOP idling, full-speed execution, or a wake /
            // sleep transition that completes silently at this instant.
            None | Some(CpuState::IdleNop) | Some(CpuState::WakingUp) => true,
            Some(CpuState::Busy(f)) => f == full,
            Some(CpuState::PowerDown { .. }) => {
                same_instant_before(events, i).any(|e| matches!(e, TraceEvent::Wakeup))
            }
            Some(CpuState::Ramping { .. }) | Some(CpuState::RampingIdle { .. }) => false,
        };
        let just_settled = same_instant_before(events, i)
            .any(|e| matches!(e, TraceEvent::RampEnd { freq } if *freq == full));
        if !settled_full && !just_settled {
            violation(
                out,
                i,
                t,
                "dispatch-at-full-speed",
                format!(
                    "dispatch while the processor is in {:?} with no same-instant settle to {full}",
                    prev_segment(events, i)
                ),
            );
        }
    }
}

fn check_slowdown_solo(events: &[(Time, TraceEvent)], cpu: &CpuSpec, out: &mut Vec<Violation>) {
    let full = cpu.full_freq();
    let mut live: BTreeSet<TaskId> = BTreeSet::new();
    for (i, &(t, ev)) in events.iter().enumerate() {
        if let TraceEvent::RampStart { to, .. } = ev {
            if to < full && live.len() != 1 {
                violation(
                    out,
                    i,
                    t,
                    "slowdown-solo",
                    format!(
                        "downward ramp to {to} with {} live jobs (need exactly 1)",
                        live.len()
                    ),
                );
            }
        }
        live_after(&mut live, &ev);
    }
}

fn check_release_at_full_speed(
    events: &[(Time, TraceEvent)],
    cpu: &CpuSpec,
    out: &mut Vec<Violation>,
) {
    let full = cpu.full_freq();
    for (i, &(t, ev)) in events.iter().enumerate() {
        if !matches!(ev, TraceEvent::Release { .. }) {
            continue;
        }
        let ok = match prev_segment(events, i) {
            None | Some(CpuState::IdleNop) => true,
            Some(CpuState::Busy(f)) if f == full => true,
            // A wake-up span ending exactly here settles silently.
            Some(CpuState::WakingUp) => true,
            // Asleep: legal only if the wake timer fired at this very
            // instant (zero-latency wake); an overslept wake is flagged.
            Some(CpuState::PowerDown { .. }) => {
                same_instant_before(events, i).any(|e| matches!(e, TraceEvent::Wakeup))
            }
            // Slowed: legal if the speed-up timer fires now, which shows
            // up as the L1–L4 ramp back to full right after the release.
            Some(CpuState::Busy(_)) => same_instant_after(events, i)
                .any(|e| matches!(e, TraceEvent::RampStart { to, .. } if *to == full)),
            // Mid-ramp: legal only if the ramp settled to full just now.
            Some(CpuState::Ramping { .. }) | Some(CpuState::RampingIdle { .. }) => {
                same_instant_before(events, i)
                    .any(|e| matches!(e, TraceEvent::RampEnd { freq } if *freq == full))
            }
        };
        let flagged =
            same_instant_before(events, i).any(|e| matches!(e, TraceEvent::TimingViolation));
        if !ok && !flagged {
            violation(
                out,
                i,
                t,
                "release-at-full-speed",
                format!(
                    "release while the processor is in {:?} without a TimingViolation flag",
                    prev_segment(events, i)
                ),
            );
        }
    }
}

fn check_powerdown_idle(events: &[(Time, TraceEvent)], out: &mut Vec<Violation>) {
    let mut live: BTreeSet<TaskId> = BTreeSet::new();
    for (i, &(t, ev)) in events.iter().enumerate() {
        if let TraceEvent::EnterPowerDown { wake_at } = ev {
            if !live.is_empty() {
                violation(
                    out,
                    i,
                    t,
                    "powerdown-idle",
                    format!("entered power-down with {} live jobs", live.len()),
                );
            }
            if wake_at < t {
                violation(
                    out,
                    i,
                    t,
                    "powerdown-idle",
                    format!("wake timer {wake_at} set in the past"),
                );
            }
            // The wake must precede the next release: sleeping through an
            // arrival would break Fig. 4's exact-wake construction.
            let next_release = events[i + 1..]
                .iter()
                .find(|(_, e)| matches!(e, TraceEvent::Release { .. }))
                .map(|&(u, _)| u);
            if let Some(r) = next_release {
                if r < wake_at {
                    violation(
                        out,
                        i,
                        t,
                        "powerdown-idle",
                        format!("asleep until {wake_at} but the next release is at {r}"),
                    );
                }
            }
        }
        live_after(&mut live, &ev);
    }
}

fn check_ramp_end_matches_start(events: &[(Time, TraceEvent)], out: &mut Vec<Violation>) {
    let mut pending: Option<Freq> = None;
    for (i, &(t, ev)) in events.iter().enumerate() {
        match ev {
            TraceEvent::RampStart { to, .. } => pending = Some(to),
            TraceEvent::RampEnd { freq } => match pending.take() {
                Some(target) if target == freq => {}
                Some(target) => violation(
                    out,
                    i,
                    t,
                    "ramp-end-matches-start",
                    format!("ramp settled at {freq} but the latest start targeted {target}"),
                ),
                None => violation(
                    out,
                    i,
                    t,
                    "ramp-end-matches-start",
                    format!("ramp end at {freq} with no ramp in flight"),
                ),
            },
            _ => {}
        }
    }
}

fn check_slowdown_at_invocation(
    events: &[(Time, TraceEvent)],
    cpu: &CpuSpec,
    out: &mut Vec<Violation>,
) {
    let full = cpu.full_freq();
    for (i, &(t, ev)) in events.iter().enumerate() {
        let TraceEvent::RampStart { to, .. } = ev else {
            continue;
        };
        if to >= full {
            // Upward ramps may be triggered by the silent speed-up timer.
            continue;
        }
        let invoked = same_instant_before(events, i).any(|e| {
            matches!(
                e,
                TraceEvent::Release { .. }
                    | TraceEvent::Dispatch { .. }
                    | TraceEvent::Complete { .. }
                    | TraceEvent::BudgetOverrun { .. }
                    | TraceEvent::TimingViolation
                    | TraceEvent::RampEnd { .. }
            )
        });
        if !invoked {
            violation(
                out,
                i,
                t,
                "slowdown-at-invocation",
                format!("downward ramp to {to} with no same-instant scheduler invocation"),
            );
        }
    }
}

fn check_counter_consistency(trace: &Trace, report: &SimReport, out: &mut Vec<Violation>) {
    let last = trace.len().saturating_sub(1);
    let end = Time::ZERO + report.horizon;
    let mut expect = |name: &'static str, counted: usize, recorded: u64| {
        if counted as u64 != recorded {
            violation(
                out,
                last,
                end,
                "counter-consistency",
                format!("counters.{name} is {recorded} but the trace holds {counted} such events"),
            );
        }
    };
    let c = &report.counters;
    expect(
        "releases",
        trace.count(|e| matches!(e, TraceEvent::Release { .. })),
        c.releases,
    );
    expect(
        "dispatches",
        trace.count(|e| matches!(e, TraceEvent::Dispatch { .. })),
        c.dispatches,
    );
    expect(
        "preemptions",
        trace.count(|e| matches!(e, TraceEvent::Preempt { .. })),
        c.preemptions,
    );
    expect(
        "completions",
        trace.count(|e| matches!(e, TraceEvent::Complete { .. })),
        c.completions,
    );
    expect(
        "ramps",
        trace.count(|e| matches!(e, TraceEvent::RampStart { .. })),
        c.ramps,
    );
    expect(
        "power_downs",
        trace.count(|e| matches!(e, TraceEvent::EnterPowerDown { .. })),
        c.power_downs,
    );
    expect(
        "watchdog_faults",
        trace.count(|e| {
            matches!(
                e,
                TraceEvent::BudgetOverrun { .. } | TraceEvent::TimingViolation
            )
        }),
        c.watchdog_faults,
    );
    let completed: u64 = report.responses.iter().map(|r| r.completed).sum();
    if completed != c.completions {
        violation(
            out,
            last,
            end,
            "counter-consistency",
            format!(
                "response stats record {completed} completions, counters record {}",
                c.completions
            ),
        );
    }
    let traced_misses = trace.count(|e| matches!(e, TraceEvent::Complete { met: false, .. }));
    let reported = report
        .misses
        .iter()
        .filter(|m| m.completed_at.is_some() && m.completed_at != Some(end))
        .count();
    if traced_misses != reported {
        violation(
            out,
            last,
            end,
            "counter-consistency",
            format!("trace holds {traced_misses} missed completions, the report lists {reported}"),
        );
    }
}
