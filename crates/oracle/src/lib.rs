// The library boundary is panic-free: untrusted input must surface as a
// typed error (`lpfps_kernel::SimError`) or a reported `Violation`, never
// abort the process. Tests and binaries may still unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-oracle
//!
//! The differential oracle for the LPFPS kernel: everything in this crate
//! exists to catch a kernel optimization that silently changed behavior.
//!
//! Three independent lines of defense:
//!
//! * [`sim::oracle_simulate`] — a deliberately *naive* reference
//!   simulator: a direct transcription of the paper's Figure 4 with no
//!   event-horizon cache, no power memo, no workspace reuse, and dumb
//!   queue structures. The differential tests assert the optimized engine
//!   matches it **field for field, bit for bit** on the full workload ×
//!   policy × fault matrix. Like the engine, it is generic over the
//!   dispatch discipline ([`sim::oracle_simulate_for`] runs the EDF
//!   cells).
//! * [`invariants::check_report`] — a trace checker enforcing the paper's
//!   guarantees as machine-checked invariants (dispatch order under the
//!   report's discipline — fixed-priority or EDF — full-speed releases,
//!   speed changes only at scheduler invocations, power-downs strictly
//!   inside idle gaps, energy consistency, …), plus
//!   [`invariants::check_theorem1`] for the `r_heu >= r_opt` safety bound
//!   over [`lpfps::RatioLogger`] samples.
//! * [`diff::first_divergence`] — a structural report diff that turns
//!   "hash mismatch" into "first diverging field, with both values",
//!   reused by the golden suite and the `diff_kernel` bench binary.

pub mod diff;
pub mod invariants;
pub(crate) mod queues;
pub mod run;
pub mod sim;

pub use diff::{first_divergence, Divergence};
pub use invariants::{check_report, check_theorem1, Violation};
pub use run::{effective_cpu, oracle_run};
pub use sim::{oracle_simulate, oracle_simulate_for};
