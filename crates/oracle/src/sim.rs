//! The naive reference simulator: a direct transcription of the paper's
//! Figure 4 pseudo-code onto the shared processor model.
//!
//! This is the half of the differential oracle that re-implements the
//! kernel. It consumes the exact same inputs ([`TaskSet`], [`CpuSpec`],
//! [`PowerPolicy`], [`ExecModel`], [`SimConfig`]) and emits the exact
//! same [`SimReport`], but deliberately refuses every optimization the
//! engine carries:
//!
//! * **no event-horizon cache** — the completion and budget-exhaust
//!   candidates are recomputed from scratch at every decision point, so a
//!   missed invalidation in the engine cannot be reproduced here;
//! * **no per-segment power memo** — `CpuSpec::state_power` runs its
//!   voltage-curve quadrature on every advance;
//! * **no workspace reuse** — every run allocates fresh buffers;
//! * **naive queues** — an insertion-ordered `Vec` scanned linearly and a
//!   `BTreeSet`, not the kernel's sorted vectors (see `crate::queues`).
//!
//! Everything *semantic* is kept identical on purpose: the decision-point
//! loop, the handler order within a decision point (ramp settle, wake,
//! releases L5–L7, completion, budget watchdog, speed-up timer, timeout
//! shutdown), the L1–L4 raise-to-max rule, the L8–L11 dispatch/preempt
//! pass, and the integer-exact time/cycle arithmetic. Because `f64`
//! enters only through the same pure functions applied to the same
//! segment sequence in the same order, a correct engine must match this
//! simulator *bit for bit* — which is exactly what the differential
//! harness asserts.

use crate::queues::{NaiveDelayQueue, NaiveRunQueue};
use lpfps_cpu::error::validate_cpu_spec;
use lpfps_cpu::ramp::Ramp;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::CpuState;
use lpfps_cpu::EnergyMeter;
use lpfps_kernel::discipline::{Discipline, FixedPriority};
use lpfps_kernel::engine::{validate_sim_config, SimConfig};
use lpfps_kernel::error::{BudgetKind, PartialDiagnostic, SimError};
use lpfps_kernel::policy::{ActiveView, FaultEvent, PowerDirective, PowerPolicy, SchedulerContext};
use lpfps_kernel::report::{Counters, DeadlineMiss, ResponseStats, SimReport};
use lpfps_kernel::stats::{IntervalStats, ResponseHistogram};
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::error::validate_task_set;
use lpfps_tasks::exec::ExecModel;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::task::TaskId;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};

/// One live (released, unfinished) job.
#[derive(Debug, Clone, Copy)]
struct LiveJob {
    index: u64,
    release: Time,
    deadline: Time,
    realized_remaining: Cycles,
    wcet_remaining: Cycles,
    budget_exceeded: bool,
}

/// Per-task runtime bookkeeping.
#[derive(Debug, Clone, Copy)]
struct TaskRt {
    pending_arrival: Time,
    next_index: u64,
    job: Option<LiveJob>,
}

/// Processor operating mode between decision points.
#[derive(Debug, Clone, Copy)]
enum ProcMode {
    Settled(Freq),
    Ramping {
        ramp: Ramp,
        started: Time,
        end: Time,
        target: Freq,
    },
    PowerDown {
        wake_at: Time,
        mode: usize,
    },
    WakingUp {
        until: Time,
    },
}

struct Oracle<'a, D: Discipline> {
    ts: &'a TaskSet,
    cpu: &'a CpuSpec,
    exec: &'a dyn ExecModel,
    cfg: &'a SimConfig,
    now: Time,
    horizon_end: Time,
    run_q: NaiveRunQueue<D::Key>,
    delay_q: NaiveDelayQueue,
    tasks: Vec<TaskRt>,
    wcet_cycles: Vec<Cycles>,
    active: Option<TaskId>,
    mode: ProcMode,
    speedup_at: Option<Time>,
    pd_timer: Option<(Time, Time)>,
    pending_overhead: Cycles,
    last_dispatched: Option<TaskId>,
    was_idle: bool,
    meter: EnergyMeter,
    counters: Counters,
    responses: Vec<ResponseStats>,
    misses: Vec<DeadlineMiss>,
    idle_gaps: IntervalStats,
    gap_start: Option<Time>,
    task_energy: Vec<f64>,
    histograms: Vec<ResponseHistogram>,
    trace: Option<Trace>,
    /// Energy segments integrated so far — the `max_segments` budget's
    /// progress counter, mirroring the engine's (and, like it, kept out of
    /// the serialized [`Counters`]).
    segments_done: u64,
}

/// Rounds an arrival up to the next tick boundary (identity for
/// event-driven kernels).
fn quantize_to_tick(arrival: Time, tick: Option<Dur>) -> Time {
    match tick {
        None => arrival,
        Some(t) => {
            let ticks = arrival.as_ns().div_ceil(t.as_ns());
            Time::from_ns(ticks.saturating_mul(t.as_ns()))
        }
    }
}

/// When the kernel notices the release of job `job_index` of `tid`.
fn noticed_release(cfg: &SimConfig, tid: TaskId, job_index: u64, arrival: Time) -> Time {
    let jittered = match &cfg.faults.release_jitter {
        // Jitter is policy-shaped, not validated: saturate to the "never"
        // sentinel rather than wrap (mirrors the engine).
        Some(j) => arrival.saturating_add(j.delay(cfg.seed, cfg.faults.seed, tid.0, job_index)),
        None => arrival,
    };
    quantize_to_tick(jittered, cfg.tick)
}

/// Runs one reference simulation of `ts` on `cpu` under `policy`.
///
/// Same contract as [`lpfps_kernel::engine::simulate`]: malformed inputs,
/// exhausted budgets, and illegal policy directives surface as the *same*
/// typed [`SimError`] the engine returns (the validators are shared, so
/// error paths stay diffable field for field); deadline misses are
/// recorded, not fatal. On success the report must equal the engine's
/// field for field (see the differential tests).
///
/// # Errors
///
/// As [`lpfps_kernel::engine::simulate`].
pub fn oracle_simulate(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    oracle_simulate_for::<FixedPriority>(ts, cpu, policy, exec, cfg)
}

/// [`oracle_simulate`] under an explicit dispatch discipline `D` —
/// the reference counterpart of
/// [`lpfps_kernel::engine::simulate_in_for`].
///
/// # Errors
///
/// As [`oracle_simulate`].
pub fn oracle_simulate_for<D: Discipline>(
    ts: &TaskSet,
    cpu: &CpuSpec,
    policy: &mut dyn PowerPolicy<D>,
    exec: &dyn ExecModel,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    // Same validators in the same order as `simulate_in_for`, so a
    // rejected input rejects identically on both sides of the diff.
    validate_sim_config(cfg)?;
    validate_task_set(ts)?;
    validate_cpu_spec(cpu)?;
    let mut oracle = Oracle::<D>::new(ts, cpu, exec, cfg);
    oracle.run(policy)?;
    Ok(oracle.into_report(policy.name()))
}

impl<'a, D: Discipline> Oracle<'a, D> {
    fn new(ts: &'a TaskSet, cpu: &'a CpuSpec, exec: &'a dyn ExecModel, cfg: &'a SimConfig) -> Self {
        let reference = cpu.reference_freq();
        let mut delay_q = NaiveDelayQueue::new();
        let mut tasks = Vec::with_capacity(ts.len());
        let mut wcet_cycles = Vec::with_capacity(ts.len());
        for (id, task, prio) in ts.iter() {
            let arrival = Time::ZERO + task.phase();
            delay_q.insert(id, prio, noticed_release(cfg, id, 0, arrival));
            tasks.push(TaskRt {
                pending_arrival: arrival,
                next_index: 0,
                job: None,
            });
            wcet_cycles.push(Cycles::from_time_at(task.wcet(), reference).max(Cycles::new(1)));
        }
        Oracle {
            ts,
            cpu,
            exec,
            cfg,
            now: Time::ZERO,
            horizon_end: Time::ZERO + cfg.horizon,
            run_q: NaiveRunQueue::new(),
            delay_q,
            tasks,
            wcet_cycles,
            active: None,
            mode: ProcMode::Settled(cpu.full_freq()),
            speedup_at: None,
            pd_timer: None,
            pending_overhead: Cycles::ZERO,
            last_dispatched: None,
            was_idle: false,
            meter: EnergyMeter::new(),
            counters: Counters::default(),
            responses: vec![ResponseStats::default(); ts.len()],
            misses: Vec::new(),
            idle_gaps: IntervalStats::new(),
            gap_start: Some(Time::ZERO),
            task_energy: vec![0.0; ts.len()],
            histograms: vec![ResponseHistogram::new(); ts.len()],
            trace: if cfg.trace { Some(Trace::new()) } else { None },
            segments_done: 0,
        }
    }

    fn run(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let wall_start = self.cfg.wall_budget.map(|_| std::time::Instant::now());
        loop {
            let t_next = self.next_event_time().min(self.horizon_end);
            self.advance_to(t_next);
            if self.now >= self.horizon_end {
                break;
            }
            self.counters.events += 1;
            self.check_budgets(wall_start)?;
            self.handle_events(policy)?;
        }
        if let Some(start) = self.gap_start.take() {
            self.idle_gaps
                .record(self.horizon_end.saturating_since(start));
        }
        self.record_unfinished_misses();
        Ok(())
    }

    /// Cooperative budget checks, once per decision point — the same
    /// placement and thresholds as the engine's, so a budget trips at the
    /// identical event with the identical diagnostic.
    fn check_budgets(&self, wall_start: Option<std::time::Instant>) -> Result<(), SimError> {
        if let Some(limit) = self.cfg.max_events {
            if self.counters.events > limit {
                return Err(self.budget_exhausted(BudgetKind::Events, limit));
            }
        }
        if let Some(limit) = self.cfg.max_segments {
            if self.segments_done > limit {
                return Err(self.budget_exhausted(BudgetKind::Segments, limit));
            }
        }
        if let (Some(budget), Some(start)) = (self.cfg.wall_budget, wall_start) {
            if self.counters.events & 0xFFFF == 0 && start.elapsed() > budget {
                return Err(self.budget_exhausted(BudgetKind::WallClock, budget.as_millis() as u64));
            }
        }
        Ok(())
    }

    fn budget_exhausted(&self, budget: BudgetKind, limit: u64) -> SimError {
        SimError::BudgetExhausted {
            budget,
            limit,
            diagnostic: PartialDiagnostic {
                sim_time: self.now,
                events: self.counters.events,
                segments: self.segments_done,
                completions: self.counters.completions,
                deadline_misses: self.misses.len(),
            },
        }
    }

    // ----- event timing (recomputed fresh at every query) -------------------

    fn next_event_time(&self) -> Time {
        let mut t = Time::MAX;
        if let Some(r) = self.delay_q.head_release() {
            t = t.min(r);
        }
        if let Some(c) = self.completion_time() {
            t = t.min(c);
        }
        if let Some(b) = self.budget_exhaust_time() {
            t = t.min(b);
        }
        match self.mode {
            ProcMode::Ramping { end, .. } => t = t.min(end),
            ProcMode::PowerDown { wake_at, .. } => t = t.min(wake_at),
            ProcMode::WakingUp { until } => t = t.min(until),
            ProcMode::Settled(_) => {}
        }
        if let Some(s) = self.speedup_at {
            t = t.min(s);
        }
        if let Some((enter, _)) = self.pd_timer {
            t = t.min(enter);
        }
        t.max(self.now)
    }

    fn frontier_work(&self) -> Option<Cycles> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        Some(self.pending_overhead + job.realized_remaining)
    }

    fn completion_time(&self) -> Option<Time> {
        self.time_to_retire_total(self.frontier_work()?)
    }

    fn budget_exhaust_time(&self) -> Option<Time> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        if job.budget_exceeded || job.wcet_remaining >= job.realized_remaining {
            return None;
        }
        self.time_to_retire_total(self.pending_overhead + job.wcet_remaining)
    }

    fn time_to_retire_total(&self, total: Cycles) -> Option<Time> {
        if total.is_zero() {
            return Some(self.now);
        }
        let reference = self.cpu.reference_freq();
        // Saturating: a completion beyond the representable range is
        // "never", and the horizon minimum cuts it off (mirrors the
        // engine).
        match self.mode {
            ProcMode::Settled(f) => Some(self.now.saturating_add(total.time_at(f))),
            ProcMode::Ramping { ramp, started, .. } => {
                let off = self.now.saturating_since(started);
                let done = ramp.work_by(off, reference);
                ramp.time_to_retire(done + total, reference)
                    .map(|t_off| started.saturating_add(t_off))
            }
            ProcMode::PowerDown { .. } | ProcMode::WakingUp { .. } => None,
        }
    }

    // ----- physics (no memo: state_power reruns every advance) --------------

    fn current_cpu_state(&self) -> CpuState {
        let executing = self
            .active
            .map(|tid| self.tasks[tid.0].job.is_some())
            .unwrap_or(false)
            || !self.pending_overhead.is_zero();
        match self.mode {
            ProcMode::Settled(f) => {
                if executing {
                    CpuState::Busy(f)
                } else {
                    CpuState::IdleNop
                }
            }
            ProcMode::Ramping { ramp, .. } => {
                let from = self.ratio_to_freq(ramp.r_from());
                let to = self.ratio_to_freq(ramp.r_to());
                if executing {
                    CpuState::Ramping { from, to }
                } else {
                    CpuState::RampingIdle { from, to }
                }
            }
            ProcMode::PowerDown { mode, .. } => CpuState::PowerDown {
                power_frac: self.cpu.sleep_modes()[mode].power_frac(),
            },
            ProcMode::WakingUp { .. } => CpuState::WakingUp,
        }
    }

    fn ratio_to_freq(&self, r: f64) -> Freq {
        let khz = (r * self.cpu.reference_freq().as_khz() as f64)
            .round()
            .max(1.0) as u64;
        Freq::from_khz(khz)
    }

    fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.now);
        let dur = t.saturating_since(self.now);
        if dur.is_zero() {
            self.now = t;
            return;
        }
        let state = self.current_cpu_state();
        // The naive path: one full voltage-curve evaluation per advance.
        // `state_power` is pure, so this is the same `f64` the engine's
        // memo serves — energy stays bitwise comparable.
        let power = self.cpu.state_power(state);
        self.segments_done += 1;
        self.meter.accumulate_with_power(state, power, dur);
        self.push_trace(TraceEvent::EnergySegment { state, power, dur });
        if state.executes_work() {
            if let Some(tid) = self.active {
                self.task_energy[tid.0] += power * dur.as_secs_f64();
            }
            let reference = self.cpu.reference_freq();
            let retired = match self.mode {
                ProcMode::Settled(f) => Cycles::from_time_at(dur, f),
                ProcMode::Ramping { ramp, started, .. } => {
                    let a = self.now.saturating_since(started);
                    let b = t.saturating_since(started);
                    ramp.work_by(b, reference) - ramp.work_by(a, reference)
                }
                _ => Cycles::ZERO,
            };
            self.retire(retired);
        }
        self.now = t;
    }

    fn retire(&mut self, mut retired: Cycles) {
        if !self.pending_overhead.is_zero() {
            let eaten = self.pending_overhead.min(retired);
            self.pending_overhead -= eaten;
            retired -= eaten;
        }
        if retired.is_zero() {
            return;
        }
        if let Some(tid) = self.active {
            if let Some(job) = self.tasks[tid.0].job.as_mut() {
                job.realized_remaining = job.realized_remaining.saturating_sub(retired);
                job.wcet_remaining = job.wcet_remaining.saturating_sub(retired);
            }
        }
    }

    // ----- event handling (same order as the kernel, Fig. 4 L1–L21) --------

    fn handle_events(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let mut need_sched = false;

        // Ramp settles.
        if let ProcMode::Ramping { end, target, .. } = self.mode {
            if self.now >= end {
                self.mode = ProcMode::Settled(target);
                self.push_trace(TraceEvent::RampEnd { freq: target });
                if target == self.cpu.full_freq() {
                    need_sched = true;
                }
            }
        }
        // Wake timer fires / wake-up completes (two decision points even
        // for a zero-latency wake, like the kernel).
        match self.mode {
            ProcMode::PowerDown { wake_at, mode } if self.now >= wake_at => {
                let mut delay =
                    self.cpu.sleep_modes()[mode].wakeup_delay(self.cpu.reference_freq());
                if let Some(j) = &self.cfg.faults.wakeup_jitter {
                    delay += j.extra(
                        self.cfg.seed,
                        self.cfg.faults.seed,
                        self.counters.power_downs,
                    );
                }
                self.mode = ProcMode::WakingUp {
                    until: self.now.saturating_add(delay),
                };
                self.push_trace(TraceEvent::Wakeup);
            }
            ProcMode::WakingUp { until } if self.now >= until => {
                self.mode = ProcMode::Settled(self.cpu.full_freq());
                need_sched = true;
            }
            _ => {}
        }
        // Releases (L5–L7), with the watchdog's overslept check.
        if self.delay_q.head_release().is_some_and(|r| r <= self.now) {
            let due = self.delay_q.pop_due(self.now);
            let overslept = match self.mode {
                ProcMode::Settled(f) => {
                    f != self.cpu.full_freq() && self.speedup_at.is_none_or(|s| s > self.now)
                }
                ProcMode::Ramping { .. } => true,
                ProcMode::PowerDown { .. } => true,
                ProcMode::WakingUp { until } => until > self.now,
            };
            if overslept {
                self.counters.watchdog_faults += 1;
                self.push_trace(TraceEvent::TimingViolation);
                if policy.on_fault(&FaultEvent::TimingViolation { now: self.now }) {
                    self.counters.degradations += 1;
                }
            }
            for &(tid, release) in &due {
                self.spawn_job(tid, release);
            }
            need_sched = true;
        }
        // Completion of the active job.
        if let Some(total) = self.frontier_work() {
            if total.is_zero() {
                self.complete_active()?;
                need_sched = true;
            }
        }
        // Budget exhaustion (watchdog, one report per job).
        if let Some(tid) = self.active {
            let exhausted = self.tasks[tid.0].job.as_ref().is_some_and(|job| {
                !job.budget_exceeded
                    && job.wcet_remaining.is_zero()
                    && !job.realized_remaining.is_zero()
            });
            if exhausted {
                if let Some(job) = self.tasks[tid.0].job.as_mut() {
                    job.budget_exceeded = true;
                }
                self.counters.watchdog_faults += 1;
                self.push_trace(TraceEvent::BudgetOverrun { task: tid });
                if policy.on_fault(&FaultEvent::BudgetOverrun {
                    task: tid,
                    now: self.now,
                }) {
                    self.counters.degradations += 1;
                }
                need_sched = true;
            }
        }
        // Speed-up timer.
        if let Some(s) = self.speedup_at {
            if self.now >= s {
                self.speedup_at = None;
                need_sched = true;
            }
        }
        // Timeout-shutdown timer.
        if let Some((enter, wake_at)) = self.pd_timer {
            if self.now >= enter {
                self.pd_timer = None;
                let idle = self.active.is_none()
                    && self.run_q.is_empty()
                    && matches!(self.mode, ProcMode::Settled(f) if f == self.cpu.full_freq());
                if idle && wake_at > self.now {
                    self.mode = ProcMode::PowerDown { wake_at, mode: 0 };
                    self.counters.power_downs += 1;
                    self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                }
            }
        }

        if need_sched {
            self.scheduler_step(policy)?;
        }
        self.track_idle_gap();
        Ok(())
    }

    fn track_idle_gap(&mut self) {
        let runnable = self.active.is_some() || !self.run_q.is_empty();
        match (runnable, self.gap_start) {
            (true, Some(start)) => {
                self.idle_gaps.record(self.now.saturating_since(start));
                self.gap_start = None;
            }
            (false, None) => self.gap_start = Some(self.now),
            _ => {}
        }
    }

    fn spawn_job(&mut self, tid: TaskId, _noticed: Time) {
        let task = self.ts.task(tid);
        let prio = self.ts.priority(tid);
        let sample = self
            .exec
            .sample(task, tid, self.tasks[tid.0].next_index, self.cfg.seed);
        let realized = Cycles::from_time_at(sample, self.cpu.reference_freq()).max(Cycles::new(1));
        let rt = &mut self.tasks[tid.0];
        let index = rt.next_index;
        let arrival = rt.pending_arrival;
        let wcet = self.wcet_cycles[tid.0];
        let mut demand = realized.min(wcet);
        if let Some(o) = &self.cfg.faults.overrun {
            let extra = o.extra_cycles(self.cfg.seed, self.cfg.faults.seed, tid.0, index, wcet);
            if !extra.is_zero() {
                demand = wcet + extra;
                self.counters.overruns += 1;
            }
        }
        rt.job = Some(LiveJob {
            index,
            release: arrival,
            deadline: arrival + task.deadline(),
            realized_remaining: demand,
            wcet_remaining: wcet,
            budget_exceeded: false,
        });
        rt.next_index += 1;
        rt.pending_arrival = arrival + task.period();
        self.counters.releases += 1;
        self.push_trace(TraceEvent::Release {
            task: tid,
            job: index,
        });
        self.run_q
            .insert(tid, D::key(prio, arrival + task.deadline(), tid));
    }

    /// The discipline key of a runnable (queued or active) task.
    fn key_of(&self, task: TaskId) -> Result<D::Key, SimError> {
        let Some(job) = self.tasks[task.0].job.as_ref() else {
            return Err(SimError::InternalInvariant {
                what: "a runnable task holds a live job",
            });
        };
        Ok(D::key(self.ts.priority(task), job.deadline, task))
    }

    fn complete_active(&mut self) -> Result<(), SimError> {
        let Some(tid) = self.active.take() else {
            return Err(SimError::InternalInvariant {
                what: "completion without an active task",
            });
        };
        let prio = self.ts.priority(tid);
        let rt = &mut self.tasks[tid.0];
        let Some(job) = rt.job.take() else {
            return Err(SimError::InternalInvariant {
                what: "active task must hold a live job",
            });
        };
        let response = self.now.saturating_since(job.release);
        let met = self.now <= job.deadline;
        self.responses[tid.0].record(response);
        self.histograms[tid.0].record(response, self.ts.task(tid).deadline());
        self.counters.completions += 1;
        if !met {
            self.misses.push(DeadlineMiss {
                task: tid,
                job: job.index,
                deadline: job.deadline,
                completed_at: Some(self.now),
            });
        }
        let next_arrival = rt.pending_arrival;
        let next_index = rt.next_index;
        self.push_trace(TraceEvent::Complete {
            task: tid,
            job: job.index,
            response,
            met,
        });
        self.delay_q.insert(
            tid,
            prio,
            noticed_release(self.cfg, tid, next_index, next_arrival),
        );
        Ok(())
    }

    // ----- the scheduler ----------------------------------------------------

    fn scheduler_step(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        let full = self.cpu.full_freq();
        match self.mode {
            ProcMode::Settled(f) if f == full => self.full_pass(policy),
            // L1–L4: raise to maximum first, re-run when settled.
            ProcMode::Settled(f) => {
                let r = f.ratio_to(self.cpu.reference_freq());
                self.begin_ramp_from_ratio(r, full, policy)
            }
            ProcMode::Ramping {
                ramp,
                started,
                target,
                ..
            } => {
                if target != full {
                    let r_now = ramp.ratio_at(self.now.saturating_since(started));
                    self.begin_ramp_from_ratio(r_now, full, policy)
                } else {
                    Ok(())
                }
            }
            ProcMode::PowerDown { .. } | ProcMode::WakingUp { .. } => Ok(()),
        }
    }

    fn full_pass(&mut self, policy: &mut dyn PowerPolicy<D>) -> Result<(), SimError> {
        self.counters.sched_passes += 1;
        // L8–L11: preemption / dispatch, in the discipline's key order.
        if let Some(head_key) = self.run_q.head_key() {
            let switch = match self.active {
                None => true,
                Some(cur) => D::preempts(head_key, self.key_of(cur)?),
            };
            if switch {
                let Some(next) = self.run_q.pop() else {
                    return Err(SimError::InternalInvariant {
                        what: "run queue emptied between head peek and pop",
                    });
                };
                if let Some(cur) = self.active.take() {
                    self.counters.preemptions += 1;
                    self.push_trace(TraceEvent::Preempt {
                        task: cur,
                        by: next,
                    });
                    let cur_key = self.key_of(cur)?;
                    self.run_q.insert(cur, cur_key);
                }
                let Some(job) = self.tasks[next.0].job.as_ref() else {
                    return Err(SimError::InternalInvariant {
                        what: "queued task holds a live job",
                    });
                };
                let job_index = job.index;
                self.counters.dispatches += 1;
                self.push_trace(TraceEvent::Dispatch {
                    task: next,
                    job: job_index,
                });
                if self.last_dispatched != Some(next) && !self.cfg.context_switch.is_zero() {
                    self.pending_overhead +=
                        Cycles::from_time_at(self.cfg.context_switch, self.cpu.reference_freq());
                }
                self.last_dispatched = Some(next);
                self.active = Some(next);
            }
        }

        // L12–L21: the policy's power decision, over materialized kernel
        // queue views (content-identical to the engine's queues).
        self.pd_timer = None;
        let directive = {
            let run_view = self.run_q.materialize();
            let delay_view = self.delay_q.materialize();
            let ctx = SchedulerContext {
                now: self.now,
                active: self.active_view(),
                run_queue: &run_view,
                delay_queue: &delay_view,
                cpu: self.cpu,
                taskset: self.ts,
            };
            policy.decide(&ctx)
        };
        self.apply_directive(directive, policy)?;
        self.note_idle_transition();
        Ok(())
    }

    fn active_view(&self) -> Option<ActiveView> {
        let tid = self.active?;
        let job = self.tasks[tid.0].job.as_ref()?;
        Some(ActiveView {
            task: tid,
            wcet_remaining: job.wcet_remaining,
            release: job.release,
            deadline: job.deadline,
        })
    }

    fn apply_directive(
        &mut self,
        directive: PowerDirective,
        policy: &mut dyn PowerPolicy<D>,
    ) -> Result<(), SimError> {
        match directive {
            PowerDirective::FullSpeed => Ok(()),
            PowerDirective::PowerDown { wake_at, mode } => {
                if self.active.is_some() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason:
                            "power-down requires an idle kernel (no active task, empty run queue)",
                    });
                }
                if wake_at < self.now {
                    return Err(SimError::InvalidDirective {
                        reason: "wake-up timer must not be in the past",
                    });
                }
                if mode >= self.cpu.sleep_modes().len() {
                    return Err(SimError::InvalidDirective {
                        reason: "sleep mode index out of range",
                    });
                }
                let Some(head) = self.delay_q.head_release() else {
                    return Err(SimError::InternalInvariant {
                        what: "with all tasks waiting, the delay queue cannot be empty",
                    });
                };
                let delay = self.cpu.sleep_modes()[mode].wakeup_delay(self.cpu.reference_freq());
                // `wake_at` is policy-supplied and unbounded: checked, not
                // raw, addition before the oversleep comparison.
                if wake_at.checked_add(delay).is_none_or(|w| w > head) {
                    return Err(SimError::InvalidDirective {
                        reason: "the processor must be awake before the next release",
                    });
                }
                self.mode = ProcMode::PowerDown { wake_at, mode };
                self.counters.power_downs += 1;
                self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                Ok(())
            }
            PowerDirective::PowerDownAt { enter_at, wake_at } => {
                if self.active.is_some() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason: "timeout shutdown requires an idle kernel",
                    });
                }
                if enter_at < self.now {
                    return Err(SimError::InvalidDirective {
                        reason: "shutdown timeout must not be in the past",
                    });
                }
                if wake_at <= enter_at {
                    return Err(SimError::InvalidDirective {
                        reason: "wake-up must follow the shutdown instant",
                    });
                }
                let Some(head) = self.delay_q.head_release() else {
                    return Err(SimError::InternalInvariant {
                        what: "with all tasks waiting, the delay queue cannot be empty",
                    });
                };
                if wake_at
                    .checked_add(self.cpu.wakeup_delay())
                    .is_none_or(|w| w > head)
                {
                    return Err(SimError::InvalidDirective {
                        reason: "the processor must be awake before the next release",
                    });
                }
                if enter_at == self.now {
                    self.mode = ProcMode::PowerDown { wake_at, mode: 0 };
                    self.counters.power_downs += 1;
                    self.push_trace(TraceEvent::EnterPowerDown { wake_at });
                } else {
                    self.pd_timer = Some((enter_at, wake_at));
                }
                Ok(())
            }
            PowerDirective::SlowDown { freq, speedup_at } => {
                if self.active.is_none() || !self.run_q.is_empty() {
                    return Err(SimError::InvalidDirective {
                        reason: "slow-down requires exactly the active task to be runnable",
                    });
                }
                if !self.cpu.ladder().contains(freq) {
                    return Err(SimError::InvalidDirective {
                        reason: "slow-down frequency must be a ladder level",
                    });
                }
                if freq >= self.cpu.full_freq() || speedup_at <= self.now {
                    return Ok(());
                }
                if !self.cfg.ratio_overhead.is_zero() {
                    self.pending_overhead +=
                        Cycles::from_time_at(self.cfg.ratio_overhead, self.cpu.reference_freq());
                }
                self.speedup_at = Some(speedup_at);
                self.begin_ramp_from_ratio(1.0, freq, policy)
            }
        }
    }

    fn begin_ramp_from_ratio(
        &mut self,
        r_from: f64,
        target: Freq,
        policy: &mut dyn PowerPolicy<D>,
    ) -> Result<(), SimError> {
        let full = self.cpu.full_freq();
        if target == full {
            self.speedup_at = None;
        }
        let r_to = target.ratio_to(self.cpu.reference_freq());
        let mut rate = self.cpu.ramp_rate_per_us();
        if let Some(d) = &self.cfg.faults.ramp_degradation {
            rate *= d.factor(self.cfg.seed, self.cfg.faults.seed, self.counters.ramps);
        }
        let ramp = Ramp::from_ratios(r_from.clamp(0.0, 1.0), r_to, rate);
        let dur = ramp.duration();
        if dur.is_zero() {
            self.mode = ProcMode::Settled(target);
            if target == full {
                self.full_pass(policy)?;
            }
            return Ok(());
        }
        self.push_trace(TraceEvent::RampStart {
            from: self.ratio_to_freq(r_from),
            to: target,
        });
        self.counters.ramps += 1;
        self.mode = ProcMode::Ramping {
            ramp,
            started: self.now,
            // A degenerate (fault-injected) ramp rate can stretch past the
            // representable range; the horizon minimum cuts it off.
            end: self.now.saturating_add(dur),
            target,
        };
        Ok(())
    }

    fn note_idle_transition(&mut self) {
        let idle = self.active.is_none()
            && self.run_q.is_empty()
            && matches!(self.mode, ProcMode::Settled(f) if f == self.cpu.full_freq());
        if idle && !self.was_idle {
            self.push_trace(TraceEvent::IdleStart);
        }
        self.was_idle = idle;
    }

    // ----- finishing --------------------------------------------------------

    fn record_unfinished_misses(&mut self) {
        let active = self.active;
        let overhead = self.pending_overhead;
        for (i, rt) in self.tasks.iter().enumerate() {
            if let Some(job) = rt.job {
                let done_at_boundary = active == Some(TaskId(i))
                    && job.realized_remaining.is_zero()
                    && overhead.is_zero();
                let completed_at = done_at_boundary.then_some(self.horizon_end);
                let missed = match completed_at {
                    Some(t) => job.deadline < t,
                    None => job.deadline <= self.horizon_end,
                };
                if missed {
                    self.misses.push(DeadlineMiss {
                        task: TaskId(i),
                        job: job.index,
                        deadline: job.deadline,
                        completed_at,
                    });
                }
            }
        }
    }

    fn push_trace(&mut self, event: TraceEvent) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(self.now, event);
        }
    }

    fn into_report(self, policy_name: &str) -> SimReport {
        SimReport {
            policy: policy_name.to_string(),
            discipline: D::NAME,
            taskset: self.ts.name().to_string(),
            horizon: self.cfg.horizon,
            energy: self.meter,
            misses: self.misses,
            responses: self.responses,
            counters: self.counters,
            idle_gaps: self.idle_gaps,
            task_energy: self.task_energy,
            histograms: self.histograms,
            trace: self.trace,
        }
    }
}
