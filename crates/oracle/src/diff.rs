//! Structural first-divergence diff between two [`SimReport`]s.
//!
//! A fingerprint mismatch tells you *that* two reports differ; this module
//! tells you *where*. Both reports are serialized to `serde_json` values
//! and walked in lockstep, depth-first in field order, and the first leaf
//! (or structural) difference is returned with its dotted path — e.g.
//! `trace.events[214].event.Dispatch.task` — and both values rendered.
//!
//! The walk deliberately runs over the serialized form, not the structs:
//! it needs no per-field plumbing when the report grows, and the path it
//! prints matches the JSON artifacts the sweep CLI emits.

use lpfps_kernel::report::SimReport;
use serde_json::{to_value, Value};
use std::fmt;

/// The first point where two reports disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Dotted path from the report root, array steps as `[i]`.
    pub path: String,
    /// The left (conventionally: engine) value at `path`, rendered as JSON.
    pub left: String,
    /// The right (conventionally: oracle) value at `path`, rendered as JSON.
    pub right: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at `{}`:\n  left:  {}\n  right: {}",
            self.path, self.left, self.right
        )
    }
}

/// Compares two reports field for field and returns the first divergence
/// in serialization order, or `None` if they are identical.
///
/// Float fields are compared through their serialized values, i.e. with
/// `f64` bit semantics as `serde_json` preserves them — the differential
/// harness demands *bitwise* energy equality, not approximate equality.
pub fn first_divergence(left: &SimReport, right: &SimReport) -> Option<Divergence> {
    // `SimReport` serializes infallibly; if that ever stops holding, the
    // unserializable side is itself the divergence.
    let (Ok(l), Ok(r)) = (to_value(left), to_value(right)) else {
        return Some(Divergence {
            path: "report".to_string(),
            left: "<unserializable>".to_string(),
            right: "<unserializable>".to_string(),
        });
    };
    walk("report", &l, &r)
}

fn walk(path: &str, left: &Value, right: &Value) -> Option<Divergence> {
    match (left, right) {
        (Value::Object(l), Value::Object(r)) => {
            for (key, lv) in l.iter() {
                match r.get(key) {
                    Some(rv) => {
                        if let Some(d) = walk(&format!("{path}.{key}"), lv, rv) {
                            return Some(d);
                        }
                    }
                    None => return Some(leaf(&format!("{path}.{key}"), Some(lv), None)),
                }
            }
            for (key, rv) in r.iter() {
                if l.get(key).is_none() {
                    return Some(leaf(&format!("{path}.{key}"), None, Some(rv)));
                }
            }
            None
        }
        (Value::Array(l), Value::Array(r)) => {
            for (i, (lv, rv)) in l.iter().zip(r.iter()).enumerate() {
                if let Some(d) = walk(&format!("{path}[{i}]"), lv, rv) {
                    return Some(d);
                }
            }
            if l.len() != r.len() {
                let i = l.len().min(r.len());
                return Some(leaf(&format!("{path}[{i}]"), l.get(i), r.get(i)));
            }
            None
        }
        _ => (left != right).then(|| leaf(path, Some(left), Some(right))),
    }
}

fn leaf(path: &str, left: Option<&Value>, right: Option<&Value>) -> Divergence {
    let render = |v: Option<&Value>| match v {
        Some(v) => serde_json::to_string(v).unwrap_or_else(|_| "<unserializable>".to_string()),
        None => "<absent>".to_string(),
    };
    Divergence {
        path: path.to_string(),
        left: render(left),
        right: render(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps::driver::{default_horizon, run, PolicyKind};
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_kernel::engine::SimConfig;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::Dur;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn identical_reports_have_no_divergence() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&ts));
        let a = run(&ts, &cpu, PolicyKind::Lpfps, &AlwaysWcet, &cfg).unwrap();
        let b = run(&ts, &cpu, PolicyKind::Lpfps, &AlwaysWcet, &cfg).unwrap();
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn scalar_field_divergence_is_located_by_path() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&ts));
        let a = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg).unwrap();
        let mut b = a.clone();
        b.counters.dispatches += 1;
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.path, "report.counters.dispatches");
        assert_ne!(d.left, d.right);
    }

    #[test]
    fn length_mismatch_points_at_first_extra_element() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(default_horizon(&ts));
        let a = run(&ts, &cpu, PolicyKind::Fps, &AlwaysWcet, &cfg).unwrap();
        let mut b = a.clone();
        let n = b.responses.len();
        b.responses.pop();
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.path, format!("report.responses[{}]", n - 1));
        assert_eq!(d.right, "<absent>");
    }
}
