//! Golden snapshot of the Perfetto exporter: the committed
//! `results/fig2_trace.perfetto.json` (written by the `export_trace`
//! binary) must be byte-identical to a fresh export of the same cell,
//! and must pass the exporter's own schema validation.
//!
//! Byte identity pins *both* sides at once: the schedule (Table 1 under
//! LPFPS, clamped Gaussian at BCET = 50 %, seed 42, 400 µs) and the
//! exporter's serialization (field order, timestamp formatting, event
//! ordering). Regenerate only for an intentional change, with
//! `cargo run --release --bin export_trace`.

use lpfps::driver::{run, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::SimConfig;
use lpfps_obs::{export_chrome_trace, validate_chrome_trace};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::time::{Dur, Time};
use lpfps_workloads::table1;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/fig2_trace.perfetto.json"
);

/// Fresh export of the exact cell `export_trace` renders.
fn fresh_export() -> String {
    let ts = table1().with_bcet_fraction(0.5);
    let horizon = Dur::from_us(400);
    let cfg = SimConfig::new(horizon).with_seed(42).with_trace();
    let report = run(
        &ts,
        &CpuSpec::arm8(),
        PolicyKind::Lpfps,
        &PaperGaussian,
        &cfg,
    )
    .expect("the Figure 2 cell simulates");
    let trace = report.trace.as_ref().expect("tracing was enabled");
    export_chrome_trace(trace, &ts, Time::ZERO + horizon)
}

#[test]
fn committed_snapshot_is_byte_identical_to_a_fresh_export() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/fig2_trace.perfetto.json is committed");
    let fresh = fresh_export();
    if golden != fresh {
        // Locate the first diverging line instead of dumping 19 kB twice.
        let line = golden
            .lines()
            .zip(fresh.lines())
            .position(|(g, f)| g != f)
            .map(|i| i + 1)
            .unwrap_or_else(|| golden.lines().count().min(fresh.lines().count()) + 1);
        panic!(
            "committed Perfetto snapshot diverged from a fresh export at line {line}; \
             if the schedule or exporter changed intentionally, regenerate with \
             `cargo run --release --bin export_trace`"
        );
    }
}

#[test]
fn committed_snapshot_passes_schema_validation() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/fig2_trace.perfetto.json is committed");
    // The validator enforces the minimal Chrome-trace-event schema: known
    // ph codes, non-decreasing timestamps per lane, and name-matched B/E
    // pairs that all close by end of trace.
    let stats = validate_chrome_trace(&golden).expect("golden snapshot validates");
    assert_eq!(stats.events, 267, "event census drifted");
    assert_eq!(stats.spans, 61, "span census drifted");
    assert_eq!(stats.instants, 33, "instant-marker census drifted");
    assert_eq!(stats.counters, 107, "counter-sample census drifted");
    // Structural frame: header line, one event per line, closing bracket.
    assert!(golden.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
    assert!(golden.ends_with("]}\n"));
}
