//! Property-based proof that observability is free.
//!
//! Two families:
//!
//! 1. **Probes are invisible.** For random schedulable task sets under
//!    every driver-dispatched policy (both dispatch disciplines: the
//!    fixed-priority family and the EDF family), with and without an
//!    injected WCET-overrun fault stream, the probed engine entry point —
//!    carrying a recording [`JobRecorder`] or an event-counting closure
//!    probe — must produce a **bit-identical serialized `SimReport`** to
//!    the plain `NoProbe` run. Probes observe; they never perturb (not
//!    even fast-forward eligibility).
//!
//! 2. **Histogram merge is a commutative monoid.** Merging per-shard
//!    [`LogHistogram`]s of an arbitrary partition of an arbitrary value
//!    multiset, in arbitrary shard order and grouping, equals recording
//!    every value into one histogram. This is the property that makes the
//!    sweep's percentile summaries byte-identical at every thread count.

use lpfps::driver::{run_in, run_probed_in, PolicyKind};
use lpfps_cpu::spec::CpuSpec;
use lpfps_faults::{FaultConfig, OverrunFault};
use lpfps_kernel::engine::{SimConfig, SimWorkspace};
use lpfps_kernel::report::SimReport;
use lpfps_obs::{JobRecorder, LogHistogram};
use lpfps_tasks::analysis::rta_schedulable;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::{Dur, Time};
use proptest::prelude::*;

/// Both dispatch disciplines through the one kernel: the fixed-priority
/// family (plain, power-down, full heuristic, watchdog) and the
/// deadline-ordered family (full-speed EDF, cycle-conserving EDF).
const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Fps,
    PolicyKind::FpsPd,
    PolicyKind::Lpfps,
    PolicyKind::LpfpsWatchdog,
    PolicyKind::Edf,
    PolicyKind::CcEdf,
];

const PERIOD_POOL_US: [u64; 6] = [100, 200, 250, 400, 500, 1000];

fn pool_set(n: usize, picks: &[usize], wcet_pcts: &[u64]) -> TaskSet {
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let period = Dur::from_us(PERIOD_POOL_US[picks[i] % PERIOD_POOL_US.len()]);
            let wcet_ns = period.as_ns() * (2 + wcet_pcts[i] % 11) / 100;
            Task::new(format!("t{i}"), period, Dur::from_ns(wcet_ns.max(1)))
        })
        .collect();
    TaskSet::rate_monotonic("prop", tasks)
}

fn report_json(report: &SimReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Probed vs plain: bit-identical serialized reports for every
    /// policy, fault-free and under overruns, trace on and off.
    #[test]
    fn probed_reports_are_bit_identical_to_noprobe(
        n in 2usize..=5,
        picks in proptest::collection::vec(0usize..6, 5..6),
        wcet_pcts in proptest::collection::vec(0u64..100, 5..6),
        seed in 0u64..=1_000,
        fault_seed in 0u64..=1_000,
        bcet_pct in 3u64..=10,
    ) {
        let ts = pool_set(n, &picks, &wcet_pcts);
        prop_assume!(rta_schedulable(&ts));
        // Two more boolean dimensions, derived from the seeds (the
        // vendored proptest caps tuple strategies at six parameters).
        let faulted = seed & 1 == 1;
        let trace = fault_seed & 1 == 1;
        let scaled = ts.with_bcet_fraction(bcet_pct as f64 / 10.0);
        let cpu = CpuSpec::arm8();
        let horizon = Dur::from_ms(4);
        let mut cfg = SimConfig::new(horizon).with_seed(seed);
        if faulted {
            cfg = cfg.with_faults(
                FaultConfig::none()
                    .with_seed(fault_seed)
                    .with_overrun(OverrunFault::clamped(0.2, 0.3, 1.3)),
            );
        }
        if trace {
            cfg = cfg.with_trace();
        }
        let mut ws = SimWorkspace::new();
        for kind in POLICIES {
            let plain = run_in(&scaled, &cpu, kind, &PaperGaussian, &cfg, &mut ws).unwrap();
            let plain_json = report_json(&plain);

            // A recording JobRecorder...
            let mut rec = JobRecorder::new();
            let probed =
                run_probed_in(&scaled, &cpu, kind, &PaperGaussian, &cfg, &mut ws, &mut rec)
                    .unwrap();
            prop_assert_eq!(
                &report_json(&probed), &plain_json,
                "{}: JobRecorder perturbed the report", kind.name()
            );

            // ...and an arbitrary closure probe (the blanket FnMut impl).
            let mut count = 0u64;
            let mut counter = |_at: Time, _e: &lpfps_kernel::trace::TraceEvent| count += 1;
            let probed =
                run_probed_in(&scaled, &cpu, kind, &PaperGaussian, &cfg, &mut ws, &mut counter)
                    .unwrap();
            prop_assert_eq!(
                &report_json(&probed), &plain_json,
                "{}: closure probe perturbed the report", kind.name()
            );
        }
    }

    /// Merging shard histograms of any partition, in any order and
    /// grouping, equals one histogram of the whole multiset.
    #[test]
    fn histogram_merge_is_associative_and_commutative_over_partitions(
        values in proptest::collection::vec(0u64..=u64::MAX, 0..300),
        cuts in proptest::collection::vec(0usize..300, 0..8),
        order_seed in 0u64..=1_000,
    ) {
        // Reference: every value into one histogram.
        let mut reference = LogHistogram::new();
        for &v in &values {
            reference.record(v);
        }

        // Partition `values` at the (sorted, deduped, clamped) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(values.len())).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut shards: Vec<LogHistogram> = bounds
            .windows(2)
            .map(|w| {
                let mut h = LogHistogram::new();
                for &v in &values[w[0]..w[1]] {
                    h.record(v);
                }
                h
            })
            .collect();

        // Commutativity: merge the shards in a seed-shuffled order.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        let mut state = order_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut left_fold = LogHistogram::new();
        for &i in &order {
            left_fold.merge(&shards[i]);
        }
        prop_assert_eq!(&left_fold, &reference, "shuffled left fold diverged");

        // Associativity: pairwise tree reduction instead of a fold.
        while shards.len() > 1 {
            let mut next = Vec::with_capacity(shards.len().div_ceil(2));
            for pair in shards.chunks(2) {
                let mut h = pair[0].clone();
                if let Some(rhs) = pair.get(1) {
                    h.merge(rhs);
                }
                next.push(h);
            }
            shards = next;
        }
        let tree = shards.pop().unwrap_or_default();
        prop_assert_eq!(&tree, &reference, "tree reduction diverged");
        prop_assert_eq!(tree.summary(), reference.summary());
    }
}
