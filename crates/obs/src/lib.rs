// Same panic-free boundary as the kernel: library code must not abort.
// Tests and binaries may unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-obs
//!
//! The observability layer of the LPFPS reproduction: everything that
//! *watches* a simulation without being allowed to *change* it.
//!
//! Three pieces, layered on the kernel's [`lpfps_kernel::probe::Probe`]
//! seam:
//!
//! * [`probe`] — recording probes. [`TraceProbe`] rebuilds a kernel
//!   `Trace` from the event stream; [`JobRecorder`] streams per-job
//!   response times and energies into histograms. The kernel guarantees
//!   a probed run produces a bit-identical `SimReport` (`NoProbe`
//!   monomorphizes the tap away entirely, so the probe-free hot path is
//!   byte-for-byte the pre-seam engine).
//! * [`hist`] — deterministic log-scale [`LogHistogram`]s whose merge is
//!   exactly associative and commutative, making sweep-level percentiles
//!   (`p50`/`p95`/`p99`/`max`) byte-identical across `--threads 1..=8`.
//! * [`perfetto`] — a Chrome-trace-event exporter
//!   ([`export_chrome_trace`], per-core [`export_multi_chrome_trace`])
//!   rendering any `Trace` as a document
//!   `chrome://tracing` / ui.perfetto.dev loads directly, plus an
//!   independent schema validator ([`validate_chrome_trace`]).
//!
//! "Observability is free" is enforced, not assumed: the bench crate
//! re-runs the 24-cell golden fingerprint matrix and the oracle
//! differential matrix with probes attached, and the `obs_free_prop`
//! property suite does the same over arbitrary workloads and fault
//! streams.

pub mod hist;
pub mod perfetto;
pub mod probe;

pub use hist::{HistSummary, LogHistogram};
pub use perfetto::{
    export_chrome_trace, export_multi_chrome_trace, validate_chrome_trace, ChromeTraceStats,
};
pub use probe::{JobRecorder, TraceProbe, FJ_PER_J};
