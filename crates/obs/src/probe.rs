//! Recording probes: concrete implementations of the kernel's
//! [`Probe`] seam.
//!
//! A probe watches the engine's event stream without touching the
//! simulation: the kernel guarantees (and the `obs_free_prop` suite
//! proves) that attaching any probe leaves the `SimReport` bit-identical
//! to a probe-free run. Two recorders live here:
//!
//! * [`TraceProbe`] — rebuilds a full kernel [`Trace`] from the stream,
//!   so tracing-quality data can be captured without flipping the
//!   engine's own `SimConfig::with_trace` switch.
//! * [`JobRecorder`] — streams per-job response times and per-job energy
//!   into deterministic [`LogHistogram`]s, the data source for the sweep
//!   engine's `--hist` percentiles.

use crate::hist::LogHistogram;
use lpfps_kernel::probe::Probe;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::task::TaskId;
use lpfps_tasks::time::Time;

/// Femtojoules per joule: the quantization unit for per-job energy.
/// `u64` femtojoules covers ~18 kJ — far beyond any simulated job.
pub const FJ_PER_J: f64 = 1e15;

/// A probe that records every event into a kernel [`Trace`].
#[derive(Debug, Default)]
pub struct TraceProbe {
    trace: Trace,
}

impl TraceProbe {
    /// An empty trace probe.
    pub fn new() -> Self {
        TraceProbe::default()
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the probe, yielding the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Probe for TraceProbe {
    fn on_event(&mut self, at: Time, event: &TraceEvent) {
        self.trace.push(at, *event);
    }
}

/// A probe that aggregates per-job observables into histograms.
///
/// Responses are recorded in nanoseconds straight from each `Complete`
/// event. Energy is attributed by replaying the engine's own accounting:
/// every `EnergySegment` whose state retires work
/// ([`executes_work`](lpfps_cpu::state::CpuState::executes_work)) is
/// charged to the task dispatched at the segment's start — the engine
/// emits the segment *before* the decision-point events that change the
/// active task, so the probe's view of "who was running" matches the
/// engine's. On completion the accumulated joules are quantized to
/// femtojoules ([`FJ_PER_J`]) so the histogram stays integral.
#[derive(Debug, Default)]
pub struct JobRecorder {
    /// The task currently holding the processor, per the event stream.
    active: Option<TaskId>,
    /// Accumulated energy (joules) of each task's in-flight job.
    acc_joules: Vec<f64>,
    /// Response times, in nanoseconds.
    response_ns: LogHistogram,
    /// Per-job busy/ramp energy, in femtojoules.
    job_energy_fj: LogHistogram,
    /// Events seen (any kind).
    events: u64,
}

impl JobRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        JobRecorder::default()
    }

    /// Response-time histogram (nanoseconds).
    pub fn response_ns(&self) -> &LogHistogram {
        &self.response_ns
    }

    /// Per-job energy histogram (femtojoules).
    pub fn job_energy_fj(&self) -> &LogHistogram {
        &self.job_energy_fj
    }

    /// Total events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Consumes the recorder, yielding `(response_ns, job_energy_fj)`.
    pub fn into_histograms(self) -> (LogHistogram, LogHistogram) {
        (self.response_ns, self.job_energy_fj)
    }

    fn slot(&mut self, task: TaskId) -> &mut f64 {
        if task.0 >= self.acc_joules.len() {
            self.acc_joules.resize(task.0 + 1, 0.0);
        }
        &mut self.acc_joules[task.0]
    }
}

impl Probe for JobRecorder {
    fn on_event(&mut self, _at: Time, event: &TraceEvent) {
        self.events = self.events.saturating_add(1);
        match *event {
            TraceEvent::Dispatch { task, .. } => self.active = Some(task),
            TraceEvent::Preempt { task, .. } if self.active == Some(task) => {
                self.active = None;
            }
            TraceEvent::EnergySegment { state, power, dur } if state.executes_work() => {
                if let Some(task) = self.active {
                    *self.slot(task) += power * dur.as_secs_f64();
                }
            }
            TraceEvent::Complete { task, response, .. } => {
                if self.active == Some(task) {
                    self.active = None;
                }
                self.response_ns.record(response.as_ns());
                let joules = core::mem::take(self.slot(task));
                // Saturating float-to-int cast: quantize to femtojoules.
                self.job_energy_fj
                    .record((joules * FJ_PER_J).round() as u64);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_kernel::engine::{simulate, simulate_in_probed, SimConfig, SimWorkspace};
    use lpfps_kernel::policy::AlwaysFullSpeed;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::taskset::TaskSet;
    use lpfps_tasks::time::Dur;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    #[test]
    fn trace_probe_matches_engine_trace() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_us(400)).with_trace();
        let traced = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap();

        let mut probe = TraceProbe::new();
        let mut ws = SimWorkspace::default();
        let probed = simulate_in_probed(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &cfg,
            &mut ws,
            &mut probe,
        )
        .unwrap();

        let engine_trace = traced.trace.as_ref().unwrap();
        let probe_trace = probe.trace();
        assert_eq!(probe_trace.len(), engine_trace.len());
        for ((ta, ea), (tb, eb)) in probe_trace.iter().zip(engine_trace.iter()) {
            assert_eq!(ta, tb);
            assert_eq!(ea, eb);
        }
        // And the report itself is untouched by the probe.
        assert_eq!(
            serde_json::to_string(&probed).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
    }

    #[test]
    fn job_recorder_counts_every_completion() {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        // A probe only sees events that are actually simulated, so
        // histogram collection always forces full simulation.
        let cfg = SimConfig::new(Dur::from_us(400)).with_force_full_simulation();
        let mut rec = JobRecorder::new();
        let mut ws = SimWorkspace::default();
        let report = simulate_in_probed(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &cfg,
            &mut ws,
            &mut rec,
        )
        .unwrap();
        // 400us hyperperiod at WCET: 8 + 5 + 4 = 17 jobs.
        assert_eq!(rec.response_ns().count(), 17);
        assert_eq!(rec.job_energy_fj().count(), 17);
        assert_eq!(report.counters.completions, rec.response_ns().count());
        assert!(rec.events() > 0);
    }

    #[test]
    fn job_energy_sums_to_busy_energy() {
        // Under AlwaysFullSpeed the only work-retiring state is Busy at
        // full clock, so per-job energies must sum to the report's busy
        // bucket (up to femtojoule quantization: one ulp per job).
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_us(400)).with_force_full_simulation();
        let mut rec = JobRecorder::new();
        let mut ws = SimWorkspace::default();
        let report = simulate_in_probed(
            &ts,
            &cpu,
            &mut AlwaysFullSpeed,
            &AlwaysWcet,
            &cfg,
            &mut ws,
            &mut rec,
        )
        .unwrap();
        let _ = report;
        // Every job completes by the horizon, so nothing is left in the
        // per-task accumulators.
        assert!(rec.acc_joules.iter().all(|&j| j == 0.0));
        // The largest job is tau3's 40us at full busy power (1.0 W
        // normalized): 4e10 fJ, recorded exactly in the histogram max.
        let max_fj = rec.job_energy_fj().max() as f64;
        assert!((max_fj - 4e10).abs() / 4e10 < 1e-6, "max_fj = {max_fj}");
    }
}
