//! Chrome-trace-event (Perfetto-loadable) export of a simulation trace.
//!
//! [`export_chrome_trace`] renders a kernel [`Trace`] as the JSON Trace
//! Event Format that `chrome://tracing` and [ui.perfetto.dev] load
//! directly: one lane per task showing execution segments, a CPU lane
//! showing the processor condition (run / ramp / power-down / idle) with
//! instant markers at every power transition, and counter tracks for
//! instantaneous power draw, settled clock frequency, and cumulative
//! energy.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev
//!
//! # Byte determinism
//!
//! The exporter hand-builds the JSON string: field order is fixed,
//! timestamps are `ns/1000.0` printed through Rust's shortest-roundtrip
//! `f64` formatter, and events are ordered by `(timestamp, emission
//! sequence)` with a stable sort — so the same trace always produces the
//! same bytes, which the committed `results/fig2_trace.perfetto.json`
//! golden snapshot pins. [`validate_chrome_trace`] is the independent
//! schema check: it re-parses the JSON through `serde_json` and verifies
//! the `ph` codes, timestamp monotonicity, and per-lane `B`/`E` nesting.

use lpfps_cpu::state::CpuState;
use lpfps_kernel::gantt::Gantt;
use lpfps_kernel::trace::{Trace, TraceEvent};
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Time;

/// The `tid` of the processor-condition lane; task lanes use `TaskId + 1`.
const CPU_TID: usize = 0;

/// Coarse processor condition, mirroring the Gantt state row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Condition {
    Run,
    Ramp,
    PowerDown,
    Idle,
}

impl Condition {
    fn name(self) -> &'static str {
        match self {
            Condition::Run => "run",
            Condition::Ramp => "ramp",
            Condition::PowerDown => "power-down",
            Condition::Idle => "idle",
        }
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a timestamp as Chrome-trace microseconds (`ns / 1000`).
/// Rust's `f64` `Display` is shortest-roundtrip and never scientific for
/// this range, so the text is a pure function of the nanosecond value.
fn ts_us(at: Time) -> String {
    format!("{}", at.as_ns() as f64 / 1000.0)
}

/// One pending event line: sorted by `(time, emission order)`.
struct Ev {
    at_ns: u64,
    seq: usize,
    json: String,
}

struct Emitter {
    /// The Chrome-trace process every subsequent record lands in. A
    /// uniprocessor export is all `pid` 0 (printed `0`, byte-identical to
    /// the pre-multicore exporter); the multicore export uses one process
    /// — one Perfetto track group — per core.
    pid: usize,
    events: Vec<Ev>,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            pid: 0,
            events: Vec::new(),
        }
    }

    fn push(&mut self, at: Time, json: String) {
        self.events.push(Ev {
            at_ns: at.as_ns(),
            seq: self.events.len(),
            json,
        });
    }

    /// A metadata record (`ph: M`) naming a process or thread.
    fn meta(&mut self, name: &str, tid: usize, value: &str) {
        self.push(
            Time::ZERO,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                name,
                self.pid,
                tid,
                json_escape(value)
            ),
        );
    }

    /// A `B`/`E` duration pair on one lane.
    fn span(&mut self, name: &str, tid: usize, from: Time, to: Time) {
        let b = format!(
            "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            json_escape(name),
            ts_us(from),
            self.pid,
            tid
        );
        self.push(from, b);
        let e = format!(
            "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            json_escape(name),
            ts_us(to),
            self.pid,
            tid
        );
        self.push(to, e);
    }

    /// A thread-scoped instant marker (`ph: i`).
    fn instant(&mut self, name: &str, tid: usize, at: Time) {
        let json = format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
            json_escape(name),
            ts_us(at),
            self.pid,
            tid
        );
        self.push(at, json);
    }

    /// A counter sample (`ph: C`).
    fn counter(&mut self, name: &str, at: Time, value: f64) {
        let json = format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"{}\":{}}}}}",
            name,
            ts_us(at),
            self.pid,
            name,
            value
        );
        self.push(at, json);
    }

    /// Stable-sorts by `(timestamp, emission order)` and renders the
    /// document.
    fn render(mut self) -> String {
        self.events.sort_by_key(|e| (e.at_ns, e.seq));
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&ev.json);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Renders `trace` (simulated over `[0, end)` for task set `ts`) as a
/// Chrome Trace Event Format JSON document. See the module docs for the
/// lane layout and the byte-determinism contract.
pub fn export_chrome_trace(trace: &Trace, ts: &TaskSet, end: Time) -> String {
    let mut em = Emitter::new();
    emit_schedule(&mut em, trace, ts, end, "lpfps schedule");
    em.render()
}

/// Renders one core's schedule into the emitter's current process: lane
/// metadata, task spans, the CPU condition lane, and the per-core counter
/// tracks. This is the whole body of the uniprocessor export, shared with
/// the multicore exporter (which calls it once per core at `pid = k`).
fn emit_schedule(em: &mut Emitter, trace: &Trace, ts: &TaskSet, end: Time, process_name: &str) {
    // Lane names. Metadata first (all at ts 0, lowest sequence numbers).
    em.meta("process_name", CPU_TID, process_name);
    em.meta("thread_name", CPU_TID, "cpu");
    for (id, task, _) in ts.iter() {
        em.meta("thread_name", id.0 + 1, task.name());
    }

    // Task lanes: the Gantt reconstruction already merges Dispatch /
    // Preempt / Complete into non-overlapping execution segments.
    let gantt = Gantt::from_trace(trace, end);
    for seg in gantt.segments() {
        let name = ts
            .iter()
            .find(|&(id, _, _)| id == seg.task)
            .map(|(_, t, _)| t.name().to_owned())
            .unwrap_or_else(|| format!("task{}", seg.task.0));
        em.span(&name, seg.task.0 + 1, seg.from, seg.to);
    }

    // CPU condition lane + transition markers, walking the raw trace the
    // same way the Gantt state row does.
    let mut cond = (Time::ZERO, Condition::Idle);
    let mut running = false;
    let flip = |em: &mut Emitter, cond: &mut (Time, Condition), at: Time, next: Condition| {
        if cond.1 != next {
            if at > cond.0 {
                em.span(cond.1.name(), CPU_TID, cond.0, at);
            }
            *cond = (at, next);
        }
    };
    for (t, e) in trace.iter() {
        match e {
            TraceEvent::Dispatch { .. } => {
                running = true;
                flip(em, &mut cond, t, Condition::Run);
            }
            TraceEvent::Complete { .. } => {
                running = false;
                flip(em, &mut cond, t, Condition::Idle);
            }
            TraceEvent::RampStart { from, to } => {
                em.instant(&format!("ramp {from} -> {to}"), CPU_TID, t);
                flip(em, &mut cond, t, Condition::Ramp);
            }
            TraceEvent::RampEnd { freq } => {
                em.instant(&format!("settled at {freq}"), CPU_TID, t);
                let next = if running {
                    Condition::Run
                } else {
                    Condition::Idle
                };
                flip(em, &mut cond, t, next);
            }
            TraceEvent::EnterPowerDown { wake_at } => {
                em.instant(&format!("power-down until {wake_at}"), CPU_TID, t);
                flip(em, &mut cond, t, Condition::PowerDown);
            }
            TraceEvent::Wakeup => {
                em.instant("wake-up", CPU_TID, t);
                flip(em, &mut cond, t, Condition::Idle);
            }
            TraceEvent::IdleStart => flip(em, &mut cond, t, Condition::Idle),
            TraceEvent::BudgetOverrun { task } => {
                em.instant(&format!("budget overrun: task{}", task.0), CPU_TID, t);
            }
            TraceEvent::TimingViolation => em.instant("timing violation", CPU_TID, t),
            TraceEvent::Release { .. } | TraceEvent::Preempt { .. } => {}
            TraceEvent::EnergySegment { .. } => {}
        }
    }
    if end > cond.0 {
        em.span(cond.1.name(), CPU_TID, cond.0, end);
    }

    // Counter tracks from the energy segments. Accumulation runs in trace
    // order in one thread, so the floats (and their printed forms) are
    // deterministic.
    let mut cum_joules = 0.0f64;
    for (t, e) in trace.iter() {
        if let TraceEvent::EnergySegment { state, power, dur } = e {
            em.counter("power_w", t, power);
            em.counter("energy_uj", t, cum_joules * 1e6);
            cum_joules += power * dur.as_secs_f64();
            if let CpuState::Busy(f) = state {
                em.counter("freq_mhz", t, f.as_mhz_f64());
            }
        }
    }
    em.counter("energy_uj", end, cum_joules * 1e6);
}

/// Renders a partitioned multicore run as one Chrome-trace document:
/// core `k`'s schedule (task lanes, CPU condition lane, per-core
/// counters) lands in process `k` — one collapsible track group per core
/// in the Perfetto UI, named `core{k}` — plus a final `fleet` process
/// carrying a `fleet_power_w` counter: the sum of every core's
/// instantaneous power draw, re-sampled at each core's power boundaries
/// (merged in `(time, core)` order, so the document stays a pure function
/// of the traces).
///
/// `cores` is `(task set, trace)` per core, in core order; `end` is the
/// shared horizon. Events sort by `(timestamp, emission sequence)`
/// exactly like the uniprocessor export, so the output is
/// byte-deterministic and passes [`validate_chrome_trace`].
pub fn export_multi_chrome_trace(cores: &[(&TaskSet, &Trace)], end: Time) -> String {
    let mut em = Emitter::new();
    for (k, (ts, trace)) in cores.iter().enumerate() {
        em.pid = k;
        emit_schedule(&mut em, trace, ts, end, &format!("core{k}"));
    }

    // Fleet power: a step function summing the per-core step functions.
    em.pid = cores.len();
    em.meta("process_name", 0, "fleet");
    let mut edges: Vec<(u64, usize, f64)> = Vec::new();
    for (k, (_, trace)) in cores.iter().enumerate() {
        for (t, e) in trace.iter() {
            if let TraceEvent::EnergySegment { power, .. } = e {
                edges.push((t.as_ns(), k, power));
            }
        }
    }
    edges.sort_by_key(|&(at, core, _)| (at, core));
    let mut per_core_power = vec![0.0f64; cores.len()];
    let mut i = 0;
    while i < edges.len() {
        let at = edges[i].0;
        while i < edges.len() && edges[i].0 == at {
            per_core_power[edges[i].1] = edges[i].2;
            i += 1;
        }
        let total: f64 = per_core_power.iter().sum();
        em.counter("fleet_power_w", Time::from_ns(at), total);
    }

    em.render()
}

/// Summary statistics returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// Total events in the document.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Instant markers.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
}

/// Independently validates an exported document: JSON parses, every
/// event's `ph` is one of `M`/`B`/`E`/`i`/`C`, timestamps never decrease
/// in file order, and on every `(pid, tid)` lane the `B`/`E` events nest
/// like matched parentheses with matching names and an empty stack at
/// the end.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    // (pid, tid) -> stack of open span names.
    let mut stacks: Vec<((u64, u64), Vec<String>)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts {
            return Err(format!("event {i}: ts went backwards ({ts} < {last_ts})"));
        }
        last_ts = ts;
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let pid = ev.get("pid").and_then(|v| v.as_u64()).unwrap_or(0);
        let tid = ev.get("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        let lane = (pid, tid);
        match ph {
            "M" => {}
            "B" => match stacks.iter_mut().find(|(l, _)| *l == lane) {
                Some((_, stack)) => stack.push(name.to_owned()),
                None => stacks.push((lane, vec![name.to_owned()])),
            },
            "E" => {
                let stack = stacks
                    .iter_mut()
                    .find(|(l, _)| *l == lane)
                    .map(|(_, s)| s)
                    .ok_or_else(|| format!("event {i}: E with no open B on lane {lane:?}"))?;
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E with no open B on lane {lane:?}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E named {name:?} closes B named {open:?}"
                    ));
                }
                stats.spans += 1;
            }
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            other => return Err(format!("event {i}: invalid ph {other:?}")),
        }
    }
    for (lane, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("lane {lane:?}: {} unclosed span(s)", stack.len()));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpfps_cpu::spec::CpuSpec;
    use lpfps_kernel::engine::{simulate, SimConfig};
    use lpfps_kernel::policy::AlwaysFullSpeed;
    use lpfps_tasks::exec::AlwaysWcet;
    use lpfps_tasks::task::Task;
    use lpfps_tasks::time::Dur;

    fn table1() -> TaskSet {
        TaskSet::rate_monotonic(
            "table1",
            vec![
                Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
                Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
                Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
            ],
        )
    }

    fn fps_trace(horizon_us: u64) -> (TaskSet, Trace) {
        let ts = table1();
        let cpu = CpuSpec::arm8();
        let cfg = SimConfig::new(Dur::from_us(horizon_us)).with_trace();
        let report = simulate(&ts, &cpu, &mut AlwaysFullSpeed, &AlwaysWcet, &cfg).unwrap();
        let trace = report.trace.clone().unwrap();
        (ts, trace)
    }

    #[test]
    fn export_validates_and_is_deterministic() {
        let (ts, trace) = fps_trace(400);
        let a = export_chrome_trace(&trace, &ts, Time::from_us(400));
        let b = export_chrome_trace(&trace, &ts, Time::from_us(400));
        assert_eq!(a, b, "export must be byte-deterministic");
        let stats = validate_chrome_trace(&a).expect("export must self-validate");
        assert!(stats.spans > 0, "expected execution spans");
        assert!(stats.counters > 0, "expected counter samples");
    }

    #[test]
    fn task_lanes_cover_busy_time() {
        // 17 jobs in one 400us hyperperiod => at least 17 task spans plus
        // the CPU condition spans.
        let (ts, trace) = fps_trace(400);
        let json = export_chrome_trace(&trace, &ts, Time::from_us(400));
        let stats = validate_chrome_trace(&json).unwrap();
        assert!(stats.spans >= 17, "spans = {}", stats.spans);
        assert!(json.contains("\"tau1\""));
        assert!(json.contains("\"tau3\""));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unmatched B.
        let unmatched = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(unmatched)
            .unwrap_err()
            .contains("unclosed"));
        // E closing the wrong span name.
        let crossed = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"y","ph":"E","ts":2,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        // Backwards time.
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","ts":5,"pid":0,"tid":0},
            {"name":"b","ph":"i","s":"t","ts":4,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("backwards"));
        // Invalid phase code.
        let bad_ph = r#"{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad_ph)
            .unwrap_err()
            .contains("invalid ph"));
    }

    #[test]
    fn multi_export_validates_and_groups_by_core() {
        let (ts_a, trace_a) = fps_trace(400);
        let (ts_b, trace_b) = fps_trace(800);
        let cores = [(&ts_a, &trace_a), (&ts_b, &trace_b)];
        let end = Time::from_us(800);
        let a = export_multi_chrome_trace(&cores, end);
        let b = export_multi_chrome_trace(&cores, end);
        assert_eq!(a, b, "multi export must be byte-deterministic");
        let stats = validate_chrome_trace(&a).expect("multi export must self-validate");
        assert!(stats.spans > 0 && stats.counters > 0);
        // One process per core, plus the fleet process.
        for needle in [
            "\"core0\"",
            "\"core1\"",
            "\"fleet\"",
            "\"pid\":1,",
            "\"pid\":2,",
        ] {
            assert!(a.contains(needle), "expected {needle} in the document");
        }
        assert!(a.contains("fleet_power_w"));
    }

    #[test]
    fn fleet_power_sums_the_cores() {
        // Two identical cores: every fleet sample must be an exact double
        // of one core's sample at that instant (same trace, same floats).
        let (ts, trace) = fps_trace(400);
        let cores = [(&ts, &trace), (&ts, &trace)];
        let json = export_multi_chrome_trace(&cores, Time::from_us(400));
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let mut core0_power = None;
        let mut checked = 0;
        for ev in events {
            if ev["ph"] == "C" && ev["name"] == "power_w" && ev["pid"] == 0 {
                core0_power = ev["args"]["power_w"].as_f64();
            }
            if ev["ph"] == "C" && ev["name"] == "fleet_power_w" {
                let fleet = ev["args"]["fleet_power_w"].as_f64().unwrap();
                let single = core0_power.unwrap_or(0.0);
                assert!(
                    (fleet - 2.0 * single).abs() < 1e-12,
                    "fleet {fleet} != 2 x {single}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "expected fleet power samples");
    }

    #[test]
    fn single_core_multi_export_matches_pid_zero_layout() {
        // The Emitter's pid parameterization must not perturb the
        // uniprocessor document: every record still prints `"pid":0`.
        let (ts, trace) = fps_trace(400);
        let json = export_chrome_trace(&trace, &ts, Time::from_us(400));
        assert!(!json.contains("\"pid\":1"));
        assert!(json.matches("\"pid\":0").count() > 0);
    }

    #[test]
    fn empty_trace_still_exports_idle_lane() {
        let ts = table1();
        let trace = Trace::new();
        let json = export_chrome_trace(&trace, &ts, Time::from_us(100));
        let stats = validate_chrome_trace(&json).unwrap();
        // One idle span covering the whole window, plus metadata and the
        // final cumulative-energy counter.
        assert_eq!(stats.spans, 1);
        assert!(json.contains("\"idle\""));
    }
}
