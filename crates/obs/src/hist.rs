//! Deterministic fixed-bucket log-scale histograms.
//!
//! The sweep engine needs percentile metrics (response times, per-job
//! energies, per-cell wall times) that are **byte-identical across thread
//! counts**. Floating-point accumulation cannot give that — addition
//! order varies with scheduling — so these histograms hold nothing but
//! `u64` bucket counts: merging two histograms is element-wise integer
//! addition, which is exactly associative and commutative. Any partition
//! of the cells into any number of workers, merged in any order, yields
//! the same bucket vector and therefore the same percentiles, bit for
//! bit (`obs_free_prop.rs` proves the algebra over arbitrary partitions).
//!
//! # Bucket scheme
//!
//! HDR-style: values below 2^[`SUB_BITS`] get exact unit buckets; above
//! that, each power-of-two octave splits into 2^[`SUB_BITS`] equal-width
//! sub-buckets, giving a bounded relative error of `2^-SUB_BITS`
//! (~3 % at the default of 5) across the whole `u64` range in
//! [`BUCKETS`] (1 920) buckets. Percentiles report the *lower bound* of
//! the selected bucket (clamped into the observed `[min, max]`), so they
//! are pure functions of the bucket counts.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;

const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB as usize);

/// The bucket index of a value. Monotone: `a <= b` implies
/// `bucket_of(a) <= bucket_of(b)`.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let offset = (v >> shift) - SUB;
        ((u64::from(shift) + 1) * SUB + offset) as usize
    }
}

/// The smallest value that lands in bucket `i` (inverse of [`bucket_of`]).
fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let shift = (i / SUB - 1) as u32;
        (SUB + i % SUB) << shift
    }
}

/// A log-scale histogram of `u64` samples with an exactly associative,
/// commutative merge. See the module docs for the bucket scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] = self.counts[bucket_of(v)].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max
        }
    }

    /// The exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Folds `other` into `self`: element-wise `u64` addition plus
    /// min/max/count combination — exactly associative and commutative,
    /// so any merge tree over any partition of the samples produces the
    /// identical histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `num/den` (e.g. `(1, 2)` = median,
    /// `(99, 100)` = p99): the lower bound of the first bucket whose
    /// cumulative count reaches `ceil(count * num / den)`, clamped into
    /// the observed `[min, max]`. Integer arithmetic throughout — a pure
    /// function of the bucket counts. Returns 0 on an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.is_empty() || den == 0 {
            return 0;
        }
        let target = ((u128::from(self.total) * u128::from(num)).div_ceil(u128::from(den))).max(1);
        if target >= u128::from(self.total) {
            return self.max;
        }
        let mut cum: u128 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += u128::from(c);
            if cum >= target {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The serializable percentile summary of this histogram.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            p50: self.quantile(1, 2),
            p95: self.quantile(19, 20),
            p99: self.quantile(99, 100),
            max: self.max(),
        }
    }
}

/// Percentiles of a [`LogHistogram`], the form that reaches `--json` and
/// `--metrics` payloads. Every field is an integer derived from bucket
/// counts, so summaries of merged histograms are byte-identical across
/// any cell partition (the `--threads` invariance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket lower bound; ~3 % relative error).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_floors_invert() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for nudge in [0u64, 1, 3] {
                values.push((1u64 << exp).saturating_add(nudge));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let b = bucket_of(v);
            assert!(b >= last, "bucket regressed at {v}");
            last = b;
            assert!(bucket_floor(b) <= v, "floor above value at {v}");
            assert_eq!(
                bucket_of(bucket_floor(b)),
                b,
                "floor left its own bucket at {v}"
            );
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        // The bucket floor is never more than 2^-SUB_BITS below the value.
        for v in [100u64, 1_000, 12_345, 1 << 20, (1 << 40) + 987_654] {
            let floor = bucket_floor(bucket_of(v));
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "error {err} at {v}");
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        let p50 = h.quantile(1, 2);
        assert!((480..=500).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(99, 100);
        assert!((960..=990).contains(&p99), "p99 = {p99}");
        // p100 equals the exact max.
        assert_eq!(h.quantile(1, 1), 1000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 700, 1 << 30]);
        let b = mk(&[0, 0, 42]);
        let c = mk(&[u64::MAX, 9999]);
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Merged summary equals the summary of recording everything into one.
        let whole = mk(&[1, 5, 700, 1 << 30, 0, 0, 42, u64::MAX, 9999]);
        assert_eq!(left.summary(), whole.summary());
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let h = LogHistogram::new();
        let s = h.summary();
        assert_eq!(
            s,
            HistSummary {
                count: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30_000] {
            h.record(v);
        }
        let s = h.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
