//! Property-based tests for the processor model: ladder quantization,
//! the voltage–frequency curve, ramp geometry, and the power model.

use lpfps_cpu::ladder::FrequencyLadder;
use lpfps_cpu::power::PowerModel;
use lpfps_cpu::ramp::Ramp;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::CpuState;
use lpfps_cpu::vf::VfCurve;
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::Dur;
use proptest::prelude::*;

const FMAX: Freq = Freq::from_mhz(100);

proptest! {
    // ---- frequency ladder -------------------------------------------------

    #[test]
    fn quantize_up_is_minimal_and_safe(target_khz in 1u64..150_000) {
        let ladder = FrequencyLadder::default();
        let f = ladder.quantize_up(Freq::from_khz(target_khz));
        prop_assert!(ladder.contains(f));
        if target_khz <= ladder.max().as_khz() {
            // Never below the request (deadline safety)...
            prop_assert!(f.as_khz() >= target_khz.max(ladder.min().as_khz()));
            // ...and never a full step above it (minimality).
            if f > ladder.min() {
                prop_assert!(f.as_khz() - ladder.step().as_khz() < target_khz);
            }
        } else {
            prop_assert_eq!(f, ladder.max());
        }
    }

    #[test]
    fn quantize_ratio_guarantees_capacity(ratio_ppm in 0u64..1_000_000) {
        let ladder = FrequencyLadder::default();
        let ratio = ratio_ppm as f64 / 1e6;
        let f = ladder.quantize_up_ratio(ratio);
        // The chosen frequency provides at least the requested fraction of
        // full-speed capacity.
        prop_assert!(f.as_khz() as f64 + 1e-9 >= ratio * ladder.max().as_khz() as f64);
    }

    // ---- voltage-frequency curve -------------------------------------------

    #[test]
    fn vf_inversion_roundtrips(khz in 1_000u64..100_000, vt_centi in 10u64..150) {
        let vt = vt_centi as f64 / 100.0;
        let vf = VfCurve::new(FMAX, 3.3, vt);
        let f = Freq::from_khz(khz);
        let v = vf.voltage_for(f);
        prop_assert!(v.0 > vt && v.0 <= 3.3 + 1e-12);
        let r = vf.frequency_ratio_at(v);
        prop_assert!((r - f.ratio_to(FMAX)).abs() < 1e-9);
    }

    #[test]
    fn voltage_is_monotone(khz in 1_000u64..99_000, step in 1u64..1_000) {
        let vf = VfCurve::default();
        let lo = vf.voltage_for(Freq::from_khz(khz)).0;
        let hi = vf.voltage_for(Freq::from_khz(khz + step)).0;
        prop_assert!(hi > lo);
    }

    // ---- power model --------------------------------------------------------

    #[test]
    fn busy_power_beats_linear_scaling(khz in 1_000u64..99_999) {
        let pm = PowerModel::default();
        let f = Freq::from_khz(khz);
        let p = pm.busy(f);
        prop_assert!(p > 0.0 && p < 1.0);
        // Quadratic voltage dependence makes p(f) < f/fmax strictly.
        prop_assert!(p < f.ratio_to(FMAX));
    }

    #[test]
    fn ramp_average_is_bounded_by_endpoints(a_mhz in 8u64..100, b_mhz in 8u64..100) {
        let pm = PowerModel::default();
        let ramp = Ramp::between(Freq::from_mhz(a_mhz), Freq::from_mhz(b_mhz), FMAX, 0.07);
        let avg = pm.ramp_average(&ramp);
        let lo = pm.busy(Freq::from_mhz(a_mhz.min(b_mhz)));
        let hi = pm.busy(Freq::from_mhz(a_mhz.max(b_mhz)));
        prop_assert!(avg >= lo - 1e-12 && avg <= hi + 1e-12);
    }

    // ---- ramp geometry -------------------------------------------------------

    #[test]
    fn ramp_duration_is_symmetric_and_rate_scaled(
        a_mhz in 8u64..100,
        b_mhz in 8u64..100,
        rate_milli in 10u64..1_000,
    ) {
        let rate = rate_milli as f64 / 1_000.0;
        let up = Ramp::between(Freq::from_mhz(a_mhz), Freq::from_mhz(b_mhz), FMAX, rate);
        let down = Ramp::between(Freq::from_mhz(b_mhz), Freq::from_mhz(a_mhz), FMAX, rate);
        prop_assert_eq!(up.duration(), down.duration());
        // Doubling the rate (at least) halves the duration up to rounding.
        let fast = Ramp::between(Freq::from_mhz(a_mhz), Freq::from_mhz(b_mhz), FMAX, rate * 2.0);
        prop_assert!(fast.duration() <= up.duration());
    }

    #[test]
    fn ramp_work_inverse_contract(
        a_mhz in 8u64..100,
        b_mhz in 8u64..100,
        frac_pct in 1u64..100,
    ) {
        prop_assume!(a_mhz != b_mhz);
        let ramp = Ramp::between(Freq::from_mhz(a_mhz), Freq::from_mhz(b_mhz), FMAX, 0.07);
        let total = ramp.total_work(FMAX);
        let target = Cycles::new((total.as_u64() * frac_pct / 100).max(1));
        if let Some(t) = ramp.time_to_retire(target, FMAX) {
            prop_assert!(ramp.work_by(t, FMAX) >= target);
            if t > Dur::from_ns(0) {
                let before = Dur::from_ns(t.as_ns() - 1);
                prop_assert!(ramp.work_by(before, FMAX) < target, "not the earliest instant");
            }
        } else {
            prop_assert!(target > total);
        }
    }

    #[test]
    fn ramp_work_is_superadditive_free(
        a_mhz in 8u64..100,
        b_mhz in 8u64..100,
        cut_pct in 1u64..100,
    ) {
        // Splitting an interval can only lose (floor) work, never create it.
        let ramp = Ramp::between(Freq::from_mhz(a_mhz), Freq::from_mhz(b_mhz), FMAX, 0.07);
        let d = ramp.duration();
        prop_assume!(!d.is_zero());
        let cut = Dur::from_ns(d.as_ns() * cut_pct / 100);
        let whole = ramp.work_by(d, FMAX);
        let split = ramp.work_by(cut, FMAX) + (ramp.work_by(d, FMAX) - ramp.work_by(cut, FMAX));
        prop_assert_eq!(split, whole);
    }

    // ---- spec-level invariants ------------------------------------------------

    #[test]
    fn state_power_is_within_unit_range(mhz in 8u64..=100) {
        let cpu = CpuSpec::arm8();
        for state in [
            CpuState::Busy(Freq::from_mhz(mhz)),
            CpuState::Ramping { from: Freq::from_mhz(mhz), to: Freq::from_mhz(100) },
            CpuState::RampingIdle { from: Freq::from_mhz(mhz), to: Freq::from_mhz(100) },
            CpuState::IdleNop,
            CpuState::PowerDown { power_frac: 0.05 },
            CpuState::WakingUp,
        ] {
            let p = cpu.state_power(state);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "{state} -> {p}");
        }
    }

    #[test]
    fn derating_never_raises_power(mhz in 8u64..=100) {
        let cpu = CpuSpec::arm8();
        let derated = cpu.derated_to(Freq::from_mhz(mhz));
        let p = derated.state_power(CpuState::Busy(derated.full_freq()));
        prop_assert!(p <= 1.0 + 1e-12);
        prop_assert_eq!(derated.reference_freq(), cpu.reference_freq());
    }
}
