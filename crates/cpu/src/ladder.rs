//! The discrete frequency ladder of a DVS processor.
//!
//! Real variable-voltage processors expose a finite set of clock
//! frequencies. The paper's processor runs from 8 MHz to 100 MHz in 1 MHz
//! steps; LPFPS must pick "a minimum allowable clock frequency >=
//! speed_ratio * max_frequency" (Fig. 4, L18) — i.e. quantize the desired
//! ratio *upward*, never down, to preserve the deadline guarantee.

use lpfps_tasks::freq::Freq;
use serde::{Deserialize, Serialize};

/// An inclusive, uniformly stepped set of selectable clock frequencies.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::ladder::FrequencyLadder;
/// use lpfps_tasks::freq::Freq;
///
/// // The paper's ladder: 8..=100 MHz, 1 MHz steps.
/// let l = FrequencyLadder::new(Freq::from_mhz(8), Freq::from_mhz(100), Freq::from_mhz(1));
/// assert_eq!(l.quantize_up_ratio(0.5), Freq::from_mhz(50));
/// assert_eq!(l.quantize_up_ratio(0.501), Freq::from_mhz(51));
/// assert_eq!(l.quantize_up_ratio(0.0), Freq::from_mhz(8)); // floor
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyLadder {
    min: Freq,
    max: Freq,
    step: Freq,
}

impl FrequencyLadder {
    /// Creates a ladder spanning `[min, max]` with the given step.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, `min > max`, the step is zero, or the span
    /// `max - min` is not a whole number of steps.
    pub fn new(min: Freq, max: Freq, step: Freq) -> Self {
        assert!(!min.is_zero(), "minimum frequency must be positive");
        assert!(min <= max, "ladder bounds must be ordered");
        assert!(!step.is_zero(), "frequency step must be positive");
        assert_eq!(
            (max.as_khz() - min.as_khz()) % step.as_khz(),
            0,
            "ladder span must be a whole number of steps"
        );
        FrequencyLadder { min, max, step }
    }

    /// A ladder with a single frequency (no DVS capability).
    pub fn fixed(freq: Freq) -> Self {
        FrequencyLadder::new(freq, freq, Freq::from_khz(1))
    }

    /// The lowest selectable frequency.
    pub fn min(&self) -> Freq {
        self.min
    }

    /// The highest selectable frequency (the "full speed" of the paper).
    pub fn max(&self) -> Freq {
        self.max
    }

    /// The ladder step.
    pub fn step(&self) -> Freq {
        self.step
    }

    /// The number of selectable levels.
    pub fn level_count(&self) -> usize {
        ((self.max.as_khz() - self.min.as_khz()) / self.step.as_khz()) as usize + 1
    }

    /// Iterates over all selectable frequencies, ascending.
    pub fn iter(&self) -> impl Iterator<Item = Freq> + '_ {
        (0..self.level_count() as u64)
            .map(move |i| Freq::from_khz(self.min.as_khz() + i * self.step.as_khz()))
    }

    /// True if `f` is one of the ladder's levels.
    pub fn contains(&self, f: Freq) -> bool {
        f >= self.min
            && f <= self.max
            && (f.as_khz() - self.min.as_khz()).is_multiple_of(self.step.as_khz())
    }

    /// The lowest ladder frequency that is **at least** `target`, or the
    /// maximum if `target` exceeds it (callers must separately check that
    /// running flat-out suffices — the schedulability analysis does).
    pub fn quantize_up(&self, target: Freq) -> Freq {
        if target <= self.min {
            return self.min;
        }
        if target >= self.max {
            return self.max;
        }
        let above_min = target.as_khz() - self.min.as_khz();
        let steps = above_min.div_ceil(self.step.as_khz());
        Freq::from_khz(self.min.as_khz() + steps * self.step.as_khz())
    }

    /// Quantizes a desired speed *ratio* (relative to the ladder maximum)
    /// upward to a selectable frequency — Fig. 4, L18 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn quantize_up_ratio(&self, ratio: f64) -> Freq {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "speed ratio must be >= 0"
        );
        // Ceiling in exact integer arithmetic on kHz to avoid f64 edge cases:
        // target_khz = ceil(ratio * max_khz).
        let target = (ratio * self.max.as_khz() as f64).ceil() as u64;
        self.quantize_up(Freq::from_khz(target))
    }
}

impl Default for FrequencyLadder {
    /// The paper's ladder: 8–100 MHz in 1 MHz steps.
    fn default() -> Self {
        FrequencyLadder::new(Freq::from_mhz(8), Freq::from_mhz(100), Freq::from_mhz(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> FrequencyLadder {
        FrequencyLadder::default()
    }

    #[test]
    fn paper_ladder_has_93_levels() {
        assert_eq!(paper().level_count(), 93);
        assert_eq!(paper().iter().count(), 93);
    }

    #[test]
    fn quantize_up_never_rounds_down() {
        let l = paper();
        for target_khz in (8_000..=100_000).step_by(137) {
            let f = l.quantize_up(Freq::from_khz(target_khz));
            assert!(f.as_khz() >= target_khz);
            assert!(
                f.as_khz() - target_khz < 1_000,
                "over-quantized by a full step"
            );
            assert!(l.contains(f));
        }
    }

    #[test]
    fn quantize_clamps_to_bounds() {
        let l = paper();
        assert_eq!(l.quantize_up(Freq::from_mhz(1)), Freq::from_mhz(8));
        assert_eq!(l.quantize_up(Freq::from_mhz(200)), Freq::from_mhz(100));
        assert_eq!(l.quantize_up_ratio(2.0), Freq::from_mhz(100));
    }

    #[test]
    fn ratio_quantization_matches_paper_example() {
        // Example 2: ratio 0.5 -> 50 MHz exactly.
        assert_eq!(paper().quantize_up_ratio(0.5), Freq::from_mhz(50));
    }

    #[test]
    fn exact_levels_pass_through() {
        let l = paper();
        for f in l.iter() {
            assert_eq!(l.quantize_up(f), f);
        }
    }

    #[test]
    fn fixed_ladder_has_one_level() {
        let l = FrequencyLadder::fixed(Freq::from_mhz(100));
        assert_eq!(l.level_count(), 1);
        assert_eq!(l.quantize_up_ratio(0.1), Freq::from_mhz(100));
    }

    #[test]
    #[should_panic(expected = "whole number of steps")]
    fn misaligned_span_rejected() {
        let _ = FrequencyLadder::new(
            Freq::from_mhz(8),
            Freq::from_khz(100_500),
            Freq::from_mhz(1),
        );
    }

    #[test]
    #[should_panic(expected = "speed ratio")]
    fn negative_ratio_rejected() {
        let _ = paper().quantize_up_ratio(-0.1);
    }
}
