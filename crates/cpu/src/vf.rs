//! Voltage–frequency relation of a DVS processor.
//!
//! The paper's processor lowers the supply voltage together with the clock
//! (the quadratic `P ~ V^2 f` dependence is where the power win comes
//! from). We model the achievable clock at supply voltage `V` with the
//! alpha-power law for a velocity-saturated CMOS ring oscillator
//! (Sakurai–Newton with `alpha = 2`, the classical long-channel case also
//! used by Pering/Burd/Brodersen's DVS simulations, which the paper cites
//! for its delay model):
//!
//! ```text
//! f(V) = k * (V - Vt)^2 / V
//! ```
//!
//! Normalizing by the maximum operating point `(Vmax, fmax)` and inverting
//! gives a closed form for the minimum voltage sustaining a target
//! frequency: with `c = (f/fmax) * g(Vmax)` where `g(V) = (V - Vt)^2 / V`,
//!
//! ```text
//! V(f) = ( (2Vt + c) + sqrt((2Vt + c)^2 - 4 Vt^2) ) / 2
//! ```
//!
//! the larger root of `V^2 - (2Vt + c) V + Vt^2 = 0` (the smaller root is
//! below `Vt` and cannot clock at all).

use lpfps_tasks::freq::Freq;
use serde::{Deserialize, Serialize};

/// A supply voltage in volts (reporting/power computation only; never used
/// for scheduling decisions, so `f64` does not threaten determinism of the
/// schedule).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Volts(pub f64);

impl core::fmt::Display for Volts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2}V", self.0)
    }
}

/// The alpha-power (alpha = 2) voltage–frequency curve, anchored at the
/// processor's maximum operating point.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::vf::VfCurve;
/// use lpfps_tasks::freq::Freq;
///
/// // The paper's ARM8-class core: 100 MHz at 3.3 V, Vt = 0.8 V.
/// let vf = VfCurve::new(Freq::from_mhz(100), 3.3, 0.8);
/// let v = vf.voltage_for(Freq::from_mhz(50));
/// assert!(v.0 > 0.8 && v.0 < 3.3);
/// // Half the clock needs well more than half the voltage margin.
/// assert!((vf.frequency_ratio_at(v) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    f_max: Freq,
    v_max: f64,
    v_t: f64,
}

impl VfCurve {
    /// Creates a curve anchored at `(v_max, f_max)` with threshold `v_t`.
    ///
    /// # Panics
    ///
    /// Panics if `f_max` is zero or the voltages do not satisfy
    /// `0 <= v_t < v_max`.
    pub fn new(f_max: Freq, v_max: f64, v_t: f64) -> Self {
        assert!(!f_max.is_zero(), "maximum frequency must be positive");
        assert!(
            v_t >= 0.0 && v_t < v_max && v_max.is_finite(),
            "require 0 <= Vt < Vmax"
        );
        VfCurve { f_max, v_max, v_t }
    }

    /// The anchor frequency.
    pub fn f_max(&self) -> Freq {
        self.f_max
    }

    /// The anchor (maximum) supply voltage.
    pub fn v_max(&self) -> Volts {
        Volts(self.v_max)
    }

    /// The threshold voltage.
    pub fn v_t(&self) -> Volts {
        Volts(self.v_t)
    }

    /// `g(V) = (V - Vt)^2 / V`, the un-normalized speed at voltage `V`.
    fn g(&self, v: f64) -> f64 {
        (v - self.v_t).powi(2) / v
    }

    /// The minimum supply voltage that sustains clock frequency `f`
    /// (clamped to the anchor for `f >= f_max`).
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero.
    pub fn voltage_for(&self, f: Freq) -> Volts {
        assert!(!f.is_zero(), "voltage is undefined for a stopped clock");
        if f >= self.f_max {
            return Volts(self.v_max);
        }
        let c = self.g(self.v_max) * f.ratio_to(self.f_max);
        let b = 2.0 * self.v_t + c;
        let v = 0.5 * (b + (b * b - 4.0 * self.v_t * self.v_t).sqrt());
        Volts(v)
    }

    /// The minimum supply voltage for a speed *ratio* `r = f / f_max`.
    ///
    /// Ratios above 1 extrapolate the alpha-power curve past the anchor
    /// (voltages above `Vmax`): physically out of spec for the modeled
    /// part, but the consistent convex extension needed by idealized
    /// unbounded-speed models (Yao et al., used in `lpfps-edf`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive and finite.
    pub fn voltage_for_ratio(&self, r: f64) -> Volts {
        assert!(r.is_finite() && r > 0.0, "speed ratio must be positive");
        if r == 1.0 {
            return Volts(self.v_max); // exact at the anchor
        }
        let c = self.g(self.v_max) * r;
        let b = 2.0 * self.v_t + c;
        Volts(0.5 * (b + (b * b - 4.0 * self.v_t * self.v_t).sqrt()))
    }

    /// The achievable frequency at voltage `v`, as a fraction of `f_max`
    /// (the inverse of [`voltage_for`](Self::voltage_for); used in tests).
    pub fn frequency_ratio_at(&self, v: Volts) -> f64 {
        if v.0 <= self.v_t {
            return 0.0;
        }
        self.g(v.0) / self.g(self.v_max)
    }
}

impl Default for VfCurve {
    /// The paper's ARM8-class anchor: 100 MHz at 3.3 V, `Vt` = 0.8 V.
    fn default() -> Self {
        VfCurve::new(Freq::from_mhz(100), 3.3, 0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VfCurve {
        VfCurve::default()
    }

    #[test]
    fn anchor_point_roundtrips() {
        let vf = curve();
        assert_eq!(vf.voltage_for(Freq::from_mhz(100)).0, 3.3);
        assert!((vf.frequency_ratio_at(Volts(3.3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_consistent_across_the_ladder() {
        let vf = curve();
        for mhz in (8..=100).step_by(7) {
            let f = Freq::from_mhz(mhz);
            let v = vf.voltage_for(f);
            let r = vf.frequency_ratio_at(v);
            assert!(
                (r - f.ratio_to(Freq::from_mhz(100))).abs() < 1e-9,
                "roundtrip failed at {mhz} MHz: {r}"
            );
        }
    }

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let vf = curve();
        let mut prev = 0.0;
        for mhz in 8..=100 {
            let v = vf.voltage_for(Freq::from_mhz(mhz)).0;
            assert!(v > prev, "voltage must increase with frequency");
            prev = v;
        }
    }

    #[test]
    fn voltage_stays_above_threshold_and_below_max() {
        let vf = curve();
        for mhz in 8..=99 {
            let v = vf.voltage_for(Freq::from_mhz(mhz)).0;
            assert!(v > 0.8 && v < 3.3, "{mhz} MHz -> {v} V out of range");
        }
    }

    #[test]
    fn sublinear_voltage_gives_superquadratic_power_win() {
        // At half speed the voltage is far below what a linear V-f relation
        // would need, so V^2 f drops by much more than 2x.
        let vf = curve();
        let v_half = vf.voltage_for(Freq::from_mhz(50)).0;
        let p_rel = (v_half / 3.3).powi(2) * 0.5;
        assert!(p_rel < 0.35, "relative power at half speed was {p_rel}");
    }

    #[test]
    fn ratio_and_frequency_forms_agree() {
        let vf = curve();
        let a = vf.voltage_for(Freq::from_mhz(37)).0;
        let b = vf.voltage_for_ratio(0.37).0;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn below_threshold_cannot_clock() {
        assert_eq!(curve().frequency_ratio_at(Volts(0.5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 <= Vt < Vmax")]
    fn invalid_thresholds_rejected() {
        let _ = VfCurve::new(Freq::from_mhz(100), 1.0, 1.5);
    }
}
