//! The CMOS power model, normalized to full-speed busy power.
//!
//! Dynamic CMOS power is `P = C_eff * V^2 * f`; dividing by the power at
//! the maximum operating point gives the *normalized* power
//! `p(f) = (V(f)/Vmax)^2 * (f/fmax)` used throughout the reports (the
//! paper's Figure 8 y-axis is exactly this unit). Two further constants
//! come straight from the paper's experimental setup:
//!
//! * **busy-wait idle** — an FPS idle loop of NOPs consumes 20 % of a
//!   typical instruction's power (Burd & Brodersen), at full voltage and
//!   clock: `p = 0.20`;
//! * **power-down** — 5 % of full power (PowerPC 603-style sleep keeping
//!   PLL and clock alive).

use crate::ramp::Ramp;
use crate::vf::VfCurve;
use lpfps_tasks::freq::Freq;
use serde::{Deserialize, Serialize};

/// Normalized power model of a DVS processor.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::{power::PowerModel, vf::VfCurve};
/// use lpfps_tasks::freq::Freq;
///
/// let pm = PowerModel::new(VfCurve::default(), 0.20, 0.05);
/// assert!((pm.busy(Freq::from_mhz(100)) - 1.0).abs() < 1e-12);
/// assert!(pm.busy(Freq::from_mhz(50)) < 0.35); // quadratic voltage win
/// assert_eq!(pm.idle_nop(), 0.20);
/// assert_eq!(pm.power_down(), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    vf: VfCurve,
    idle_frac: f64,
    powerdown_frac: f64,
}

impl PowerModel {
    /// Creates a model from a V–f curve and the two idle-mode fractions.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn new(vf: VfCurve, idle_frac: f64, powerdown_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&idle_frac), "idle fraction in [0,1]");
        assert!(
            (0.0..=1.0).contains(&powerdown_frac),
            "power-down fraction in [0,1]"
        );
        PowerModel {
            vf,
            idle_frac,
            powerdown_frac,
        }
    }

    /// The underlying voltage–frequency curve.
    pub fn vf(&self) -> &VfCurve {
        &self.vf
    }

    /// Normalized power while executing at frequency `f` (voltage set to
    /// the minimum sustaining `f`).
    pub fn busy(&self, f: Freq) -> f64 {
        self.busy_ratio(f.ratio_to(self.vf.f_max()))
    }

    /// Normalized power at speed ratio `r`. Ratios above 1 follow the
    /// extrapolated V-f curve (super-unity power), the convex extension
    /// required by idealized unbounded-speed models; real schedules never
    /// exceed 1.
    pub fn busy_ratio(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let v = self.vf.voltage_for_ratio(r).0;
        let v_rel = v / self.vf.v_max().0;
        v_rel * v_rel * r
    }

    /// Normalized power of the NOP busy-wait loop (FPS idling).
    pub fn idle_nop(&self) -> f64 {
        self.idle_frac
    }

    /// Normalized power in power-down mode.
    pub fn power_down(&self) -> f64 {
        self.powerdown_frac
    }

    /// Average normalized power over a voltage/clock ramp (Simpson's rule
    /// over the linear ratio trajectory; the integrand `v(r)^2 r` is smooth,
    /// so 16 panels are far more accurate than needed for energy reports).
    pub fn ramp_average(&self, ramp: &Ramp) -> f64 {
        let (a, b) = (ramp.r_from(), ramp.r_to());
        if (a - b).abs() < 1e-15 {
            return self.busy_ratio(a);
        }
        const PANELS: usize = 16; // even
        let h = (b - a) / PANELS as f64;
        let mut acc = self.busy_ratio(a) + self.busy_ratio(b);
        for i in 1..PANELS {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += w * self.busy_ratio(a + h * i as f64);
        }
        acc * h / 3.0 / (b - a)
    }
}

impl Default for PowerModel {
    /// The paper's constants: NOP idle at 20 %, power-down at 5 %.
    fn default() -> Self {
        PowerModel::new(VfCurve::default(), 0.20, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PowerModel {
        PowerModel::default()
    }

    #[test]
    fn full_speed_power_is_unity() {
        assert!((pm().busy(Freq::from_mhz(100)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_power_is_monotone_in_frequency() {
        let m = pm();
        let mut prev = 0.0;
        for mhz in 8..=100 {
            let p = m.busy(Freq::from_mhz(mhz));
            assert!(p > prev, "power must increase with frequency");
            prev = p;
        }
    }

    #[test]
    fn dvs_beats_linear_scaling_everywhere_below_full() {
        // Because voltage drops with frequency, p(f) < f/fmax strictly.
        let m = pm();
        for mhz in 8..100 {
            let r = mhz as f64 / 100.0;
            assert!(
                m.busy(Freq::from_mhz(mhz)) < r,
                "no quadratic win at {mhz} MHz"
            );
        }
    }

    #[test]
    fn slowdown_can_beat_the_nop_idle_loop() {
        // The key LPFPS argument: running slow is cheaper than racing and
        // busy-waiting. At the ladder floor the busy power is below even
        // the 20% NOP loop.
        let m = pm();
        assert!(m.busy(Freq::from_mhz(8)) < m.idle_nop());
    }

    #[test]
    fn ramp_average_lies_between_endpoint_powers() {
        let m = pm();
        let fmax = Freq::from_mhz(100);
        let ramp = Ramp::between(Freq::from_mhz(30), fmax, fmax, 0.07);
        let avg = m.ramp_average(&ramp);
        assert!(avg > m.busy(Freq::from_mhz(30)) && avg < 1.0);
    }

    #[test]
    fn degenerate_ramp_average_is_point_power() {
        let m = pm();
        let fmax = Freq::from_mhz(100);
        let ramp = Ramp::between(Freq::from_mhz(40), Freq::from_mhz(40), fmax, 0.07);
        assert!((m.ramp_average(&ramp) - m.busy(Freq::from_mhz(40))).abs() < 1e-12);
    }

    #[test]
    fn ramp_average_is_direction_symmetric() {
        let m = pm();
        let fmax = Freq::from_mhz(100);
        let up = Ramp::between(Freq::from_mhz(20), Freq::from_mhz(90), fmax, 0.07);
        let down = Ramp::between(Freq::from_mhz(90), Freq::from_mhz(20), fmax, 0.07);
        assert!((m.ramp_average(&up) - m.ramp_average(&down)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle fraction")]
    fn invalid_idle_fraction_rejected() {
        let _ = PowerModel::new(VfCurve::default(), 1.5, 0.05);
    }
}
