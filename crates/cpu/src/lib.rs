// The library boundary is panic-free: untrusted input must surface as a
// typed error (`error::CpuSpecError`), never abort the process. Tests and
// binaries may still unwrap freely.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # lpfps-cpu
//!
//! The DVS processor and CMOS power model for the reproduction of *Power
//! Conscious Fixed Priority Scheduling for Hard Real-Time Systems* (Shin &
//! Choi, DAC 1999).
//!
//! The paper evaluates LPFPS on an ARM8-class core: 100 MHz at 3.3 V, a
//! frequency ladder down to 8 MHz in 1 MHz steps, a power-down mode at 5 %
//! of full power with a 10-cycle wake-up, a NOP busy-wait loop at 20 % of
//! typical-instruction power, and voltage/clock transitions that change the
//! speed ratio linearly at `rho = 0.07/us` while the processor keeps
//! executing. This crate encodes that processor:
//!
//! * [`ladder`] — the discrete frequency ladder with *upward* quantization
//!   (deadline-safe).
//! * [`vf`] — the alpha-power voltage–frequency curve (closed-form
//!   inversion for minimum sustaining voltage).
//! * [`power`] — normalized CMOS dynamic power `p = (V/Vmax)^2 (f/fmax)`
//!   plus the idle/power-down constants.
//! * [`ramp`] — the linear transition model: durations, work retired during
//!   a ramp, and its exact inverse.
//! * [`state`], [`energy`] — processor states and per-state energy
//!   accounting.
//! * [`spec`] — [`CpuSpec`], the bundle the kernel consumes;
//!   [`CpuSpec::arm8`](crate::spec::CpuSpec::arm8) is the paper's configuration.
//!
//! # Example
//!
//! ```
//! use lpfps_cpu::{spec::CpuSpec, state::CpuState};
//! use lpfps_tasks::freq::Freq;
//!
//! let cpu = CpuSpec::arm8();
//! // Running at half speed costs far less than half the power:
//! let p = cpu.state_power(CpuState::Busy(Freq::from_mhz(50)));
//! assert!(p < 0.35);
//! ```

pub mod energy;
pub mod error;
pub mod ladder;
pub mod modes;
pub mod power;
pub mod ramp;
pub mod spec;
pub mod state;
pub mod vf;

pub use energy::EnergyMeter;
pub use error::{validate_cpu_spec, CpuSpecError};
pub use ladder::FrequencyLadder;
pub use modes::{best_mode_for, SleepMode};
pub use power::PowerModel;
pub use ramp::Ramp;
pub use spec::CpuSpec;
pub use state::{CpuState, StateKind};
pub use vf::{VfCurve, Volts};
