//! Processor operating states as seen by the kernel simulator.

use lpfps_tasks::freq::Freq;
use serde::{Deserialize, Serialize};

/// What the processor is doing over a simulation interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CpuState {
    /// Executing instructions at a settled clock frequency (voltage at the
    /// minimum sustaining it).
    Busy(Freq),
    /// Executing while the clock/voltage ramps linearly between two
    /// frequencies (the processor keeps retiring work during transitions).
    Ramping { from: Freq, to: Freq },
    /// Ramping with nothing to execute: the processor spins its NOP idle
    /// loop while the voltage settles (e.g. returning to full speed after
    /// the active task completed early at a lowered frequency).
    RampingIdle { from: Freq, to: Freq },
    /// Spinning on a NOP busy-wait loop at full clock and voltage — how a
    /// conventional FPS kernel idles.
    IdleNop,
    /// A sleep mode drawing `power_frac` of full busy power (the paper's
    /// single mode keeps PLL/clock alive at 5 %; see
    /// [`SleepMode`](crate::modes::SleepMode) for the whole family).
    PowerDown {
        /// Residual power as a fraction of full busy power.
        power_frac: f64,
    },
    /// Returning from power-down to full-power mode (the paper's 10-cycle
    /// wake-up latency); draws full power, retires no task work.
    WakingUp,
}

/// Coarse classification of [`CpuState`], the key for energy breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StateKind {
    /// Settled execution.
    Busy,
    /// Execution during a voltage/clock ramp.
    Ramping,
    /// NOP busy-wait.
    IdleNop,
    /// Power-down residency.
    PowerDown,
    /// Wake-up transitions.
    WakingUp,
}

impl StateKind {
    /// All kinds, in report order.
    pub const ALL: [StateKind; 5] = [
        StateKind::Busy,
        StateKind::Ramping,
        StateKind::IdleNop,
        StateKind::PowerDown,
        StateKind::WakingUp,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StateKind::Busy => "busy",
            StateKind::Ramping => "ramp",
            StateKind::IdleNop => "idle-nop",
            StateKind::PowerDown => "power-down",
            StateKind::WakingUp => "wake-up",
        }
    }
}

impl CpuState {
    /// The coarse classification of this state.
    pub fn kind(self) -> StateKind {
        match self {
            CpuState::Busy(_) => StateKind::Busy,
            CpuState::Ramping { .. } => StateKind::Ramping,
            CpuState::RampingIdle { .. } => StateKind::Ramping,
            CpuState::IdleNop => StateKind::IdleNop,
            CpuState::PowerDown { .. } => StateKind::PowerDown,
            CpuState::WakingUp => StateKind::WakingUp,
        }
    }

    /// True if task work retires in this state.
    pub fn executes_work(self) -> bool {
        matches!(self, CpuState::Busy(_) | CpuState::Ramping { .. })
    }
}

impl core::fmt::Display for CpuState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CpuState::Busy(freq) => write!(f, "busy@{freq}"),
            CpuState::Ramping { from, to } => write!(f, "ramp {from}->{to}"),
            CpuState::RampingIdle { from, to } => write!(f, "ramp-idle {from}->{to}"),
            CpuState::IdleNop => write!(f, "idle-nop"),
            CpuState::PowerDown { .. } => write!(f, "power-down"),
            CpuState::WakingUp => write!(f, "wake-up"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_states() {
        assert_eq!(CpuState::Busy(Freq::from_mhz(50)).kind(), StateKind::Busy);
        assert_eq!(CpuState::IdleNop.kind(), StateKind::IdleNop);
        assert_eq!(
            CpuState::Ramping {
                from: Freq::from_mhz(8),
                to: Freq::from_mhz(100)
            }
            .kind(),
            StateKind::Ramping
        );
    }

    #[test]
    fn only_busy_and_ramping_execute() {
        assert!(CpuState::Busy(Freq::from_mhz(8)).executes_work());
        assert!(CpuState::Ramping {
            from: Freq::from_mhz(8),
            to: Freq::from_mhz(9)
        }
        .executes_work());
        assert!(!CpuState::IdleNop.executes_work());
        assert!(!CpuState::PowerDown { power_frac: 0.05 }.executes_work());
        assert!(!CpuState::WakingUp.executes_work());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CpuState::Busy(Freq::from_mhz(50)).to_string(), "busy@50MHz");
        assert_eq!(
            CpuState::PowerDown { power_frac: 0.05 }.to_string(),
            "power-down"
        );
    }

    #[test]
    fn all_kinds_have_unique_labels() {
        let mut labels: Vec<_> = StateKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StateKind::ALL.len());
    }
}
