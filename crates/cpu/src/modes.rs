//! Multi-level sleep modes.
//!
//! §2.1 of the paper describes processors (PowerPC 603) with *several*
//! power-down modes, "each associated with a level of power saving and
//! delay overhead" — e.g. sleep mode at 5 % of full power with ~10 cycles
//! of wake-up. The paper's evaluation uses that single mode; this module
//! models the whole family so the mode-selection extension (pick the
//! deepest mode whose wake-up latency fits the idle window) can be
//! studied.

use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// One sleep mode: its residual power draw and its wake-up latency.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::modes::SleepMode;
/// use lpfps_tasks::{freq::Freq, time::Dur};
///
/// let sleep = SleepMode::paper_sleep();
/// assert_eq!(sleep.power_frac(), 0.05);
/// assert_eq!(sleep.wakeup_delay(Freq::from_mhz(100)), Dur::from_ns(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepMode {
    // Static labels keep the type `Copy`; serde round-trips drop the name
    // (it is cosmetic) and restore the empty string.
    #[serde(skip)]
    name: &'static str,
    power_frac: f64,
    wakeup_cycles: u64,
}

impl SleepMode {
    /// Creates a sleep mode.
    ///
    /// # Panics
    ///
    /// Panics if the power fraction is outside `[0, 1]`.
    pub fn new(name: &'static str, power_frac: f64, wakeup_cycles: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&power_frac),
            "sleep power fraction must be in [0, 1]"
        );
        SleepMode {
            name,
            power_frac,
            wakeup_cycles,
        }
    }

    /// The paper's evaluated mode: PLL and clock alive, 5 % of full power,
    /// 10-cycle wake-up.
    pub fn paper_sleep() -> Self {
        SleepMode::new("sleep", 0.05, 10)
    }

    /// Doze: most units clocked off, caches snooping; cheap to leave.
    pub fn doze() -> Self {
        SleepMode::new("doze", 0.30, 5)
    }

    /// Nap: clocks stopped except the timebase; tens of cycles to leave.
    pub fn nap() -> Self {
        SleepMode::new("nap", 0.10, 50)
    }

    /// Deep sleep: PLL off; microseconds-scale relock on wake-up.
    pub fn deep_sleep() -> Self {
        SleepMode::new("deep-sleep", 0.02, 10_000)
    }

    /// The mode's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Residual power as a fraction of full busy power.
    pub fn power_frac(&self) -> f64 {
        self.power_frac
    }

    /// Wake-up latency in cycles at the reference clock.
    pub fn wakeup_cycles(&self) -> u64 {
        self.wakeup_cycles
    }

    /// Wake-up latency as wall-clock time at `reference`.
    pub fn wakeup_delay(&self, reference: Freq) -> Dur {
        Cycles::new(self.wakeup_cycles).time_at(reference)
    }

    /// Normalized energy of spending a whole idle window of length
    /// `window` in this mode: residual draw until the wake timer, then
    /// full power for the wake-up latency. Returns `None` if the window
    /// cannot even fit the wake-up.
    pub fn window_energy(&self, window: Dur, reference: Freq) -> Option<f64> {
        let wake = self.wakeup_delay(reference);
        if wake >= window {
            return None;
        }
        let resident = window - wake;
        Some(self.power_frac * resident.as_secs_f64() + wake.as_secs_f64())
    }
}

/// Picks the index of the mode in `modes` minimizing the energy of an
/// idle window, or `None` if no mode fits (window shorter than every
/// wake-up latency).
pub fn best_mode_for(modes: &[SleepMode], window: Dur, reference: Freq) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, m) in modes.iter().enumerate() {
        if let Some(e) = m.window_energy(window, reference) {
            if best.map(|(_, be)| e < be).unwrap_or(true) {
                best = Some((i, e));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: Freq = Freq::from_mhz(100);

    fn family() -> Vec<SleepMode> {
        vec![
            SleepMode::doze(),
            SleepMode::nap(),
            SleepMode::paper_sleep(),
            SleepMode::deep_sleep(),
        ]
    }

    #[test]
    fn paper_mode_constants() {
        let m = SleepMode::paper_sleep();
        assert_eq!(m.name(), "sleep");
        assert_eq!(m.wakeup_cycles(), 10);
        assert_eq!(m.wakeup_delay(REF), Dur::from_ns(100));
    }

    #[test]
    fn window_energy_charges_wakeup_at_full_power() {
        let m = SleepMode::paper_sleep();
        // 1 ms window: 999.9us at 5% + 100ns at 100%.
        let e = m.window_energy(Dur::from_ms(1), REF).unwrap();
        let expected = 0.05 * 999_900e-9 + 100e-9;
        assert!((e - expected).abs() < 1e-15);
    }

    #[test]
    fn too_short_windows_fit_no_mode() {
        let m = SleepMode::deep_sleep(); // 100us wake-up
        assert_eq!(m.window_energy(Dur::from_us(50), REF), None);
        assert_eq!(best_mode_for(&[m], Dur::from_us(50), REF), None);
    }

    #[test]
    fn deeper_modes_win_longer_windows() {
        let fam = family();
        // 10 ms window: deep sleep's 2% dominates despite the 100us wake.
        assert_eq!(best_mode_for(&fam, Dur::from_ms(10), REF), Some(3));
        // 200 us window: deep sleep cannot pay off its wake-up; the 5%
        // sleep mode wins.
        assert_eq!(best_mode_for(&fam, Dur::from_us(200), REF), Some(2));
        // A 1 us window: sleep (100ns wake) still wins over nap (500ns).
        assert_eq!(best_mode_for(&fam, Dur::from_us(1), REF), Some(2));
        // A 300 ns window only fits doze (50ns) and sleep (100ns): sleep's
        // lower draw still wins.
        let i = best_mode_for(&fam, Dur::from_ns(300), REF).unwrap();
        assert!(fam[i].name() == "sleep" || fam[i].name() == "doze");
    }

    #[test]
    fn selection_minimizes_energy_exhaustively() {
        let fam = family();
        for window_us in [1u64, 5, 50, 200, 1_000, 20_000] {
            let w = Dur::from_us(window_us);
            if let Some(best) = best_mode_for(&fam, w, REF) {
                let be = fam[best].window_energy(w, REF).unwrap();
                for m in &fam {
                    if let Some(e) = m.window_energy(w, REF) {
                        assert!(
                            be <= e + 1e-18,
                            "window {w}: {} beat {}",
                            m.name(),
                            fam[best].name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        let _ = SleepMode::new("bad", 1.5, 1);
    }
}
