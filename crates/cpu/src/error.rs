//! Typed validation errors for the processor model.
//!
//! Mirrors `lpfps_tasks::error`: the panicking constructors stay the
//! ergonomic path for literal, known-good specs (the paper's ARM8-class
//! processor), while [`CpuSpec::validated`](crate::spec::CpuSpec::validated)
//! and [`validate_cpu_spec`] give untrusted input — deserialized specs,
//! external configuration — a typed rejection instead of a process abort.

use crate::spec::CpuSpec;
use core::fmt;

/// Why a processor specification failed validation.
///
/// `Display` strings are stable (pinned by error-message snapshot tests).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CpuSpecError {
    /// The frequency ladder's minimum is zero: work could never retire.
    ZeroFrequency,
    /// The ladder's bounds are inverted (`min > max`).
    UnorderedLadder,
    /// The ladder's step is zero (the level iterator would never advance).
    ZeroLadderStep,
    /// The ladder span is not a whole number of steps: quantization would
    /// not be closed over the selectable levels.
    MisalignedLadder,
    /// The ladder maximum exceeds the V–f anchor frequency, so busy power
    /// would extrapolate beyond the model's domain.
    LadderAboveReference,
    /// The speed-ratio ramp rate `rho` is zero, negative, or not finite —
    /// a non-monotone ramp table: transitions would never converge.
    BadRampRate {
        /// The rejected rate, per microsecond.
        rate: f64,
    },
    /// The spec has no sleep modes; the kernel's power-down decision would
    /// have nothing to select.
    NoSleepModes,
    /// A sleep mode's residual power fraction is outside `[0, 1]` or NaN.
    BadSleepPower {
        /// Index of the offending mode.
        mode: usize,
        /// The rejected fraction.
        power_frac: f64,
    },
}

impl fmt::Display for CpuSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuSpecError::ZeroFrequency => {
                write!(f, "frequency ladder minimum must be positive")
            }
            CpuSpecError::UnorderedLadder => {
                write!(f, "frequency ladder bounds must be ordered (min <= max)")
            }
            CpuSpecError::ZeroLadderStep => {
                write!(f, "frequency ladder step must be positive")
            }
            CpuSpecError::MisalignedLadder => {
                write!(f, "frequency ladder span must be a whole number of steps")
            }
            CpuSpecError::LadderAboveReference => {
                write!(
                    f,
                    "frequency ladder maximum must not exceed the V-f reference frequency"
                )
            }
            CpuSpecError::BadRampRate { rate } => {
                write!(f, "ramp rate must be positive and finite, got {rate}")
            }
            CpuSpecError::NoSleepModes => {
                write!(f, "a processor needs at least one sleep mode")
            }
            CpuSpecError::BadSleepPower { mode, power_frac } => {
                write!(
                    f,
                    "sleep mode {mode}: power fraction must be in [0, 1], got {power_frac}"
                )
            }
        }
    }
}

impl std::error::Error for CpuSpecError {}

/// Checks a (possibly deserialized) processor spec against every rule the
/// panicking constructors assert.
///
/// [`CpuSpec`] implements `Deserialize`, so malformed specs can exist
/// without passing through [`CpuSpec::new`](crate::spec::CpuSpec::new);
/// panic-free consumers (the simulation kernel) re-check here at their
/// boundary. After this passes, the constructor `assert!`s are provably
/// unreachable for this value.
pub fn validate_cpu_spec(cpu: &CpuSpec) -> Result<(), CpuSpecError> {
    let ladder = cpu.ladder();
    if ladder.min().is_zero() {
        return Err(CpuSpecError::ZeroFrequency);
    }
    if ladder.min() > ladder.max() {
        return Err(CpuSpecError::UnorderedLadder);
    }
    if ladder.step().is_zero() {
        return Err(CpuSpecError::ZeroLadderStep);
    }
    if !(ladder.max().as_khz() - ladder.min().as_khz()).is_multiple_of(ladder.step().as_khz()) {
        return Err(CpuSpecError::MisalignedLadder);
    }
    if ladder.max() > cpu.reference_freq() {
        return Err(CpuSpecError::LadderAboveReference);
    }
    let rate = cpu.ramp_rate_per_us();
    if !(rate.is_finite() && rate > 0.0) {
        return Err(CpuSpecError::BadRampRate { rate });
    }
    if cpu.sleep_modes().is_empty() {
        return Err(CpuSpecError::NoSleepModes);
    }
    for (i, mode) in cpu.sleep_modes().iter().enumerate() {
        let p = mode.power_frac();
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(CpuSpecError::BadSleepPower {
                mode: i,
                power_frac: p,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_processor_passes() {
        assert_eq!(validate_cpu_spec(&CpuSpec::arm8()), Ok(()));
        assert_eq!(validate_cpu_spec(&CpuSpec::arm8_multimode()), Ok(()));
        assert_eq!(validate_cpu_spec(&CpuSpec::arm8_fixed_frequency()), Ok(()));
    }

    /// Serializes the paper's spec and swaps one field for a hostile
    /// value — serde bypasses the constructors, so the malformed spec
    /// exists in memory without any assert having fired.
    fn doctored_arm8(needle: &str, replacement: &str) -> CpuSpec {
        let json = serde_json::to_string(&CpuSpec::arm8()).unwrap();
        let doctored = json.replace(needle, replacement);
        assert_ne!(json, doctored, "needle `{needle}` not found in {json}");
        serde_json::from_str(&doctored).unwrap()
    }

    #[test]
    fn deserialized_zero_frequency_ladder_is_caught() {
        let cpu = doctored_arm8("\"min\":8000", "\"min\":0");
        assert_eq!(validate_cpu_spec(&cpu), Err(CpuSpecError::ZeroFrequency));
    }

    #[test]
    fn deserialized_bad_ramp_rate_is_caught() {
        let cpu = doctored_arm8("\"ramp_rate_per_us\":0.07", "\"ramp_rate_per_us\":-1");
        assert_eq!(
            validate_cpu_spec(&cpu),
            Err(CpuSpecError::BadRampRate { rate: -1.0 })
        );
    }

    #[test]
    fn deserialized_empty_sleep_modes_are_caught() {
        let cpu = doctored_arm8(
            "\"sleep_modes\":[{\"power_frac\":0.05,\"wakeup_cycles\":10}]",
            "\"sleep_modes\":[]",
        );
        assert_eq!(validate_cpu_spec(&cpu), Err(CpuSpecError::NoSleepModes));
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            CpuSpecError::ZeroFrequency.to_string(),
            "frequency ladder minimum must be positive"
        );
        assert_eq!(
            CpuSpecError::BadRampRate { rate: 0.0 }.to_string(),
            "ramp rate must be positive and finite, got 0"
        );
    }
}
