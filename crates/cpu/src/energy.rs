//! Energy accounting with per-state breakdowns.
//!
//! Energy is accumulated as `normalized power x seconds`, so a meter that
//! reads `1.0` after one second means "the energy a full-speed busy
//! processor burns in a second". Average power over the run (energy /
//! elapsed time) is the unit of the paper's Figure 8.
//!
//! Energy is *reporting-only*: nothing in the scheduling path reads the
//! meter, so its use of `f64` cannot perturb the (integer-exact) schedule.

use crate::state::{CpuState, StateKind};
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates energy and residency per processor state.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::{energy::EnergyMeter, spec::CpuSpec, state::CpuState};
/// use lpfps_tasks::time::Dur;
///
/// let cpu = CpuSpec::arm8();
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(&cpu, CpuState::IdleNop, Dur::from_ms(1));
/// // 20% power for 1 ms = 0.0002 normalized joule-equivalents.
/// assert!((meter.total_energy() - 2e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    total_energy: f64,
    per_state: BTreeMap<StateKind, StateBucket>,
}

/// Residency and energy attributed to one state kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StateBucket {
    /// Total time spent in this state.
    pub residency: Dur,
    /// Total normalized energy burned in this state.
    pub energy: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges `dur` spent in `state` on processor `cpu`.
    pub fn accumulate(&mut self, cpu: &crate::spec::CpuSpec, state: CpuState, dur: Dur) {
        if dur.is_zero() {
            return;
        }
        let power = cpu.state_power(state);
        let energy = power * dur.as_secs_f64();
        self.total_energy += energy;
        let bucket = self.per_state.entry(state.kind()).or_default();
        bucket.residency += dur;
        bucket.energy += energy;
    }

    /// Total normalized energy over the run.
    pub fn total_energy(&self) -> f64 {
        self.total_energy
    }

    /// Average normalized power over an elapsed wall-clock span.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn average_power(&self, elapsed: Dur) -> f64 {
        assert!(!elapsed.is_zero(), "cannot average power over zero time");
        self.total_energy / elapsed.as_secs_f64()
    }

    /// The bucket for one state kind (zero if never entered).
    pub fn bucket(&self, kind: StateKind) -> StateBucket {
        self.per_state.get(&kind).copied().unwrap_or_default()
    }

    /// Iterates non-empty buckets in report order.
    pub fn buckets(&self) -> impl Iterator<Item = (StateKind, StateBucket)> + '_ {
        self.per_state.iter().map(|(&k, &b)| (k, b))
    }

    /// Total residency across all states (should equal elapsed sim time;
    /// the kernel asserts this).
    pub fn total_residency(&self) -> Dur {
        self.per_state
            .values()
            .fold(Dur::ZERO, |acc, b| acc + b.residency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CpuSpec;
    use lpfps_tasks::freq::Freq;

    #[test]
    fn empty_meter_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.total_residency(), Dur::ZERO);
        assert_eq!(m.bucket(StateKind::Busy), StateBucket::default());
    }

    #[test]
    fn accumulation_splits_by_state() {
        let cpu = CpuSpec::arm8();
        let mut m = EnergyMeter::new();
        m.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(100)), Dur::from_ms(2));
        m.accumulate(
            &cpu,
            CpuState::PowerDown { power_frac: 0.05 },
            Dur::from_ms(8),
        );
        assert_eq!(m.bucket(StateKind::Busy).residency, Dur::from_ms(2));
        assert_eq!(m.bucket(StateKind::PowerDown).residency, Dur::from_ms(8));
        assert_eq!(m.total_residency(), Dur::from_ms(10));
        // 1.0 * 2ms + 0.05 * 8ms = 2.4 ms-units.
        assert!((m.total_energy() - 2.4e-3).abs() < 1e-12);
        // Average power over 10 ms = 0.24.
        assert!((m.average_power(Dur::from_ms(10)) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_a_no_op() {
        let cpu = CpuSpec::arm8();
        let mut m = EnergyMeter::new();
        m.accumulate(&cpu, CpuState::IdleNop, Dur::ZERO);
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.buckets().count(), 0);
    }

    #[test]
    fn busy_at_low_frequency_is_cheap() {
        let cpu = CpuSpec::arm8();
        let mut slow = EnergyMeter::new();
        let mut fast = EnergyMeter::new();
        slow.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(50)), Dur::from_ms(2));
        fast.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(100)), Dur::from_ms(1));
        // Same work (100 Mcycles), but the slow run burns much less energy.
        assert!(slow.total_energy() < 0.7 * fast.total_energy());
    }

    #[test]
    #[should_panic(expected = "zero time")]
    fn average_over_zero_time_panics() {
        let _ = EnergyMeter::new().average_power(Dur::ZERO);
    }
}
