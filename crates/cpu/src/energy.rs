//! Energy accounting with per-state breakdowns.
//!
//! Energy is accumulated as `normalized power x seconds`, so a meter that
//! reads `1.0` after one second means "the energy a full-speed busy
//! processor burns in a second". Average power over the run (energy /
//! elapsed time) is the unit of the paper's Figure 8.
//!
//! Energy is *reporting-only*: nothing in the scheduling path reads the
//! meter, so its use of `f64` cannot perturb the (integer-exact) schedule.

use crate::state::{CpuState, StateKind};
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates energy and residency per processor state.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::{energy::EnergyMeter, spec::CpuSpec, state::CpuState};
/// use lpfps_tasks::time::Dur;
///
/// let cpu = CpuSpec::arm8();
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(&cpu, CpuState::IdleNop, Dur::from_ms(1));
/// // 20% power for 1 ms = 0.0002 normalized joule-equivalents.
/// assert!((meter.total_energy() - 2e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    total_energy: f64,
    /// One slot per [`StateKind`], indexed by declaration order — a plain
    /// array store on the simulation hot path (the meter is charged on
    /// every advance) where a `BTreeMap` lookup used to sit. A kind was
    /// "entered" iff its residency is non-zero (charges are only ever
    /// positive), which the serialized form below relies on.
    buckets: [StateBucket; StateKind::ALL.len()],
}

/// Residency and energy attributed to one state kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StateBucket {
    /// Total time spent in this state.
    pub residency: Dur,
    /// Total normalized energy burned in this state.
    pub energy: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Charges `dur` spent in `state` on processor `cpu`.
    pub fn accumulate(&mut self, cpu: &crate::spec::CpuSpec, state: CpuState, dur: Dur) {
        self.accumulate_with_power(state, cpu.state_power(state), dur);
    }

    /// Charges `dur` spent in `state` drawing `power`, for callers that
    /// already hold `state_power(state)` — the kernel memoizes it per mode
    /// segment so ramp-power quadrature is not re-run on every advance.
    pub fn accumulate_with_power(&mut self, state: CpuState, power: f64, dur: Dur) {
        if dur.is_zero() {
            return;
        }
        let energy = power * dur.as_secs_f64();
        self.total_energy += energy;
        let bucket = &mut self.buckets[state.kind() as usize];
        bucket.residency += dur;
        bucket.energy += energy;
    }

    /// Total normalized energy over the run.
    pub fn total_energy(&self) -> f64 {
        self.total_energy
    }

    /// Average normalized power over an elapsed wall-clock span.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn average_power(&self, elapsed: Dur) -> f64 {
        assert!(!elapsed.is_zero(), "cannot average power over zero time");
        self.total_energy / elapsed.as_secs_f64()
    }

    /// The bucket for one state kind (zero if never entered).
    pub fn bucket(&self, kind: StateKind) -> StateBucket {
        self.buckets[kind as usize]
    }

    /// Iterates non-empty buckets in report order.
    pub fn buckets(&self) -> impl Iterator<Item = (StateKind, StateBucket)> + '_ {
        StateKind::ALL
            .into_iter()
            .map(|k| (k, self.bucket(k)))
            .filter(|(_, b)| !b.residency.is_zero())
    }

    /// Total residency across all states (should equal elapsed sim time;
    /// the kernel asserts this).
    pub fn total_residency(&self) -> Dur {
        self.buckets
            .iter()
            .fold(Dur::ZERO, |acc, b| acc + b.residency)
    }
}

/// Serializes exactly like the historical
/// `{ total_energy, per_state: BTreeMap<StateKind, StateBucket> }` layout:
/// `per_state` is an object holding only the entered kinds, in
/// [`StateKind::ALL`] (= `BTreeMap` iteration) order — so report JSON and
/// the golden fingerprints over it are unchanged by the array-backed
/// representation.
impl Serialize for EnergyMeter {
    fn to_value(&self) -> serde::Value {
        let mut per_state = serde::Map::new();
        for (kind, bucket) in self.buckets() {
            match kind.to_value() {
                serde::Value::String(key) => per_state.insert(key, bucket.to_value()),
                other => unreachable!("unit variant serializes to a string, got {other:?}"),
            }
        }
        let mut map = serde::Map::new();
        map.insert("total_energy".to_string(), self.total_energy.to_value());
        map.insert("per_state".to_string(), serde::Value::Object(per_state));
        serde::Value::Object(map)
    }
}

impl Deserialize for EnergyMeter {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected an object for EnergyMeter"))?;
        let total_energy = f64::from_value(
            obj.get("total_energy")
                .ok_or_else(|| serde::Error::missing_field("EnergyMeter", "total_energy"))?,
        )?;
        let per_state = BTreeMap::<StateKind, StateBucket>::from_value(
            obj.get("per_state")
                .ok_or_else(|| serde::Error::missing_field("EnergyMeter", "per_state"))?,
        )?;
        let mut buckets = [StateBucket::default(); StateKind::ALL.len()];
        for (kind, bucket) in per_state {
            buckets[kind as usize] = bucket;
        }
        Ok(EnergyMeter {
            total_energy,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CpuSpec;
    use lpfps_tasks::freq::Freq;

    #[test]
    fn empty_meter_reads_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.total_residency(), Dur::ZERO);
        assert_eq!(m.bucket(StateKind::Busy), StateBucket::default());
    }

    #[test]
    fn accumulation_splits_by_state() {
        let cpu = CpuSpec::arm8();
        let mut m = EnergyMeter::new();
        m.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(100)), Dur::from_ms(2));
        m.accumulate(
            &cpu,
            CpuState::PowerDown { power_frac: 0.05 },
            Dur::from_ms(8),
        );
        assert_eq!(m.bucket(StateKind::Busy).residency, Dur::from_ms(2));
        assert_eq!(m.bucket(StateKind::PowerDown).residency, Dur::from_ms(8));
        assert_eq!(m.total_residency(), Dur::from_ms(10));
        // 1.0 * 2ms + 0.05 * 8ms = 2.4 ms-units.
        assert!((m.total_energy() - 2.4e-3).abs() < 1e-12);
        // Average power over 10 ms = 0.24.
        assert!((m.average_power(Dur::from_ms(10)) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_a_no_op() {
        let cpu = CpuSpec::arm8();
        let mut m = EnergyMeter::new();
        m.accumulate(&cpu, CpuState::IdleNop, Dur::ZERO);
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.buckets().count(), 0);
    }

    #[test]
    fn busy_at_low_frequency_is_cheap() {
        let cpu = CpuSpec::arm8();
        let mut slow = EnergyMeter::new();
        let mut fast = EnergyMeter::new();
        slow.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(50)), Dur::from_ms(2));
        fast.accumulate(&cpu, CpuState::Busy(Freq::from_mhz(100)), Dur::from_ms(1));
        // Same work (100 Mcycles), but the slow run burns much less energy.
        assert!(slow.total_energy() < 0.7 * fast.total_energy());
    }

    #[test]
    #[should_panic(expected = "zero time")]
    fn average_over_zero_time_panics() {
        let _ = EnergyMeter::new().average_power(Dur::ZERO);
    }
}
