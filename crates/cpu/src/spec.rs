//! The complete processor specification used by the kernel simulator.

use crate::error::{validate_cpu_spec, CpuSpecError};
use crate::ladder::FrequencyLadder;
use crate::modes::SleepMode;
use crate::power::PowerModel;
use crate::ramp::Ramp;
use crate::state::CpuState;
use crate::vf::VfCurve;
use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::freq::Freq;
use lpfps_tasks::time::Dur;
use serde::{Deserialize, Serialize};

/// Everything the simulator needs to know about the processor: the
/// frequency ladder, the V–f curve, the power model, the transition-rate
/// constant `rho`, and the power-down wake-up latency.
///
/// [`CpuSpec::arm8`] builds the paper's exact configuration.
///
/// # Examples
///
/// ```
/// use lpfps_cpu::spec::CpuSpec;
/// use lpfps_tasks::{freq::Freq, time::Dur};
///
/// let cpu = CpuSpec::arm8();
/// assert_eq!(cpu.full_freq(), Freq::from_mhz(100));
/// assert_eq!(cpu.wakeup_delay(), Dur::from_ns(100)); // 10 cycles @ 100 MHz
/// // 30 -> 100 MHz in 10 us: the paper's worst-case transition.
/// assert_eq!(cpu.ramp_duration(Freq::from_mhz(30), Freq::from_mhz(100)), Dur::from_us(10));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    ladder: FrequencyLadder,
    power: PowerModel,
    ramp_rate_per_us: f64,
    wakeup_cycles: u64,
    sleep_modes: Vec<SleepMode>,
}

impl CpuSpec {
    /// Builds a specification from parts.
    ///
    /// # Panics
    ///
    /// Panics if the ramp rate is not positive and finite, or if the
    /// ladder maximum differs from the V–f curve anchor.
    pub fn new(
        ladder: FrequencyLadder,
        power: PowerModel,
        ramp_rate_per_us: f64,
        wakeup_cycles: u64,
    ) -> Self {
        assert!(
            ramp_rate_per_us.is_finite() && ramp_rate_per_us > 0.0,
            "ramp rate must be positive"
        );
        assert!(
            ladder.max() <= power.vf().f_max(),
            "ladder maximum must not exceed the V-f anchor (reference) frequency"
        );
        let primary = SleepMode::new("sleep", power.power_down(), wakeup_cycles);
        CpuSpec {
            ladder,
            power,
            ramp_rate_per_us,
            wakeup_cycles,
            sleep_modes: vec![primary],
        }
    }

    /// Fallible counterpart of [`CpuSpec::new`] for untrusted input:
    /// returns a typed error instead of panicking.
    ///
    /// After `validated` succeeds, every constructor `assert!` is provably
    /// unreachable for this value — the precondition contract the kernel's
    /// panic-free boundary relies on.
    ///
    /// # Errors
    ///
    /// Returns the [`CpuSpecError`] naming the violated rule.
    pub fn validated(
        ladder: FrequencyLadder,
        power: PowerModel,
        ramp_rate_per_us: f64,
        wakeup_cycles: u64,
    ) -> Result<Self, CpuSpecError> {
        if !(ramp_rate_per_us.is_finite() && ramp_rate_per_us > 0.0) {
            return Err(CpuSpecError::BadRampRate {
                rate: ramp_rate_per_us,
            });
        }
        // Check before SleepMode::new, whose assert would fire first.
        let down = power.power_down();
        if !(0.0..=1.0).contains(&down) || down.is_nan() {
            return Err(CpuSpecError::BadSleepPower {
                mode: 0,
                power_frac: down,
            });
        }
        let primary = SleepMode::new("sleep", down, wakeup_cycles);
        let spec = CpuSpec {
            ladder,
            power,
            ramp_rate_per_us,
            wakeup_cycles,
            sleep_modes: vec![primary],
        };
        validate_cpu_spec(&spec)?;
        Ok(spec)
    }

    /// Fallible counterpart of [`CpuSpec::with_sleep_modes`].
    ///
    /// # Errors
    ///
    /// Returns [`CpuSpecError::NoSleepModes`] for an empty family, or
    /// [`CpuSpecError::BadSleepPower`] for an out-of-range residual draw.
    pub fn try_with_sleep_modes(self, modes: Vec<SleepMode>) -> Result<Self, CpuSpecError> {
        if modes.is_empty() {
            return Err(CpuSpecError::NoSleepModes);
        }
        let mut spec = self;
        spec.sleep_modes = modes;
        validate_cpu_spec(&spec)?;
        Ok(spec)
    }

    /// Replaces the sleep-mode family (the default is the single paper
    /// mode built from the power model's power-down fraction and the
    /// wake-up cycle count).
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    pub fn with_sleep_modes(mut self, modes: Vec<SleepMode>) -> Self {
        assert!(
            !modes.is_empty(),
            "a processor needs at least one sleep mode"
        );
        self.sleep_modes = modes;
        self
    }

    /// The paper's processor extended with the PowerPC-603-style mode
    /// family of SS2.1: doze (30 %, 5 cycles), nap (10 %, 50 cycles),
    /// sleep (5 %, 10 cycles), deep sleep (2 %, 10^4 cycles = 100 us).
    pub fn arm8_multimode() -> Self {
        CpuSpec::arm8().with_sleep_modes(vec![
            SleepMode::doze(),
            SleepMode::nap(),
            SleepMode::paper_sleep(),
            SleepMode::deep_sleep(),
        ])
    }

    /// The paper's ARM8-class reference processor:
    /// 8–100 MHz in 1 MHz steps, 3.3 V at 100 MHz, `rho = 0.07/us`
    /// (30 -> 100 MHz in 10 us worst case), power-down at 5 % of full
    /// power with a 10-cycle wake-up, NOP busy-wait at 20 %.
    pub fn arm8() -> Self {
        CpuSpec::new(FrequencyLadder::default(), PowerModel::default(), 0.07, 10)
    }

    /// A processor with DVS disabled (single full-speed level) but the
    /// same idle/power-down modes — the substrate for the FPS and FPS+PD
    /// baselines and ablations.
    pub fn arm8_fixed_frequency() -> Self {
        CpuSpec::new(
            FrequencyLadder::fixed(Freq::from_mhz(100)),
            PowerModel::default(),
            0.07,
            10,
        )
    }

    /// An idealized variant with instantaneous voltage transitions
    /// (`rho` effectively infinite) — used in ablations to isolate the cost
    /// of ramps. The rate is large enough that every ramp rounds to 1 ns.
    pub fn arm8_instant_ramps() -> Self {
        CpuSpec::new(FrequencyLadder::default(), PowerModel::default(), 1e9, 10)
    }

    /// The frequency ladder.
    pub fn ladder(&self) -> &FrequencyLadder {
        &self.ladder
    }

    /// The power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The voltage–frequency curve.
    pub fn vf(&self) -> &VfCurve {
        self.power.vf()
    }

    /// The highest *selectable* frequency (the kernel settles here for
    /// scheduler passes). Equals the reference frequency on the paper's
    /// processor; lower on a derated (statically slowed) variant.
    pub fn full_freq(&self) -> Freq {
        self.ladder.max()
    }

    /// The reference frequency: the V–f anchor at which WCETs are quoted
    /// and cycles are counted (100 MHz on the paper's processor).
    pub fn reference_freq(&self) -> Freq {
        self.power.vf().f_max()
    }

    /// A derated copy whose only selectable frequency is `freq`, keeping
    /// the reference anchor and power model — the substrate for the
    /// static-slowdown baseline (the whole schedule runs at `freq`).
    ///
    /// # Panics
    ///
    /// Panics if `freq` is zero or exceeds the reference frequency.
    pub fn derated_to(&self, freq: Freq) -> CpuSpec {
        assert!(!freq.is_zero(), "derated frequency must be positive");
        assert!(
            freq <= self.reference_freq(),
            "derated frequency must not exceed the reference frequency"
        );
        CpuSpec {
            ladder: FrequencyLadder::fixed(freq),
            power: self.power,
            ramp_rate_per_us: self.ramp_rate_per_us,
            wakeup_cycles: self.wakeup_cycles,
            sleep_modes: self.sleep_modes.clone(),
        }
    }

    /// The minimum selectable frequency.
    pub fn min_freq(&self) -> Freq {
        self.ladder.min()
    }

    /// The speed-ratio change rate `rho`, per microsecond.
    pub fn ramp_rate_per_us(&self) -> f64 {
        self.ramp_rate_per_us
    }

    /// The wake-up latency from the primary power-down mode, in cycles at
    /// the reference clock.
    pub fn wakeup_cycles(&self) -> u64 {
        self.wakeup_cycles
    }

    /// The available sleep modes (at least one; index 0 on the paper's
    /// processor is its single 5 %/10-cycle mode).
    pub fn sleep_modes(&self) -> &[SleepMode] {
        &self.sleep_modes
    }

    /// The wake-up latency as wall-clock time (cycles at the reference
    /// clock, which keeps running in power-down mode).
    pub fn wakeup_delay(&self) -> Dur {
        Cycles::new(self.wakeup_cycles).time_at(self.reference_freq())
    }

    /// Builds the ramp describing a transition between two frequencies.
    pub fn ramp(&self, from: Freq, to: Freq) -> Ramp {
        Ramp::between(from, to, self.reference_freq(), self.ramp_rate_per_us)
    }

    /// Wall-clock duration of a transition between two frequencies.
    pub fn ramp_duration(&self, from: Freq, to: Freq) -> Dur {
        self.ramp(from, to).duration()
    }

    /// The longest possible transition (ladder minimum to maximum) — the
    /// delay bound LPFPS must budget when slowing down.
    pub fn worst_ramp_duration(&self) -> Dur {
        self.ramp_duration(self.min_freq(), self.full_freq())
    }

    /// Normalized average power drawn in `state`.
    pub fn state_power(&self, state: CpuState) -> f64 {
        match state {
            CpuState::Busy(f) => self.power.busy(f),
            CpuState::Ramping { from, to } => self.power.ramp_average(&self.ramp(from, to)),
            CpuState::RampingIdle { from, to } => {
                self.power.idle_nop() * self.power.ramp_average(&self.ramp(from, to))
            }
            CpuState::IdleNop => self.power.idle_nop(),
            CpuState::PowerDown { power_frac } => power_frac,
            CpuState::WakingUp => 1.0,
        }
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::arm8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm8_matches_paper_constants() {
        let cpu = CpuSpec::arm8();
        assert_eq!(cpu.full_freq(), Freq::from_mhz(100));
        assert_eq!(cpu.min_freq(), Freq::from_mhz(8));
        assert_eq!(cpu.ladder().step(), Freq::from_mhz(1));
        assert_eq!(cpu.wakeup_cycles(), 10);
        assert_eq!(cpu.wakeup_delay(), Dur::from_ns(100));
        assert!((cpu.state_power(CpuState::IdleNop) - 0.20).abs() < 1e-12);
        assert!((cpu.state_power(CpuState::PowerDown { power_frac: 0.05 }) - 0.05).abs() < 1e-12);
        assert_eq!(cpu.sleep_modes().len(), 1);
        assert_eq!(cpu.sleep_modes()[0].power_frac(), 0.05);
        assert!((cpu.state_power(CpuState::Busy(Freq::from_mhz(100))) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ramp_is_full_ladder_span() {
        let cpu = CpuSpec::arm8();
        // (1.0 - 0.08) / 0.07 = 13.142.. us, rounded up to whole ns.
        let d = cpu.worst_ramp_duration();
        assert!(d > Dur::from_us(13) && d < Dur::from_us(14), "got {d}");
    }

    #[test]
    fn fixed_frequency_variant_has_no_dvs_range() {
        let cpu = CpuSpec::arm8_fixed_frequency();
        assert_eq!(cpu.min_freq(), cpu.full_freq());
        assert_eq!(cpu.ladder().level_count(), 1);
    }

    #[test]
    fn instant_ramp_variant_rounds_to_nanoseconds() {
        let cpu = CpuSpec::arm8_instant_ramps();
        let d = cpu.ramp_duration(Freq::from_mhz(8), Freq::from_mhz(100));
        assert!(d <= Dur::from_ns(1), "got {d}");
    }

    #[test]
    fn wakeup_draws_full_power() {
        assert_eq!(CpuSpec::arm8().state_power(CpuState::WakingUp), 1.0);
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn ladder_above_reference_rejected() {
        let ladder =
            FrequencyLadder::new(Freq::from_mhz(8), Freq::from_mhz(120), Freq::from_mhz(1));
        let _ = CpuSpec::new(ladder, PowerModel::default(), 0.07, 10);
    }

    #[test]
    fn derated_spec_keeps_reference_anchor() {
        let cpu = CpuSpec::arm8().derated_to(Freq::from_mhz(60));
        assert_eq!(cpu.full_freq(), Freq::from_mhz(60));
        assert_eq!(cpu.reference_freq(), Freq::from_mhz(100));
        assert_eq!(cpu.ladder().level_count(), 1);
        // Busy power at the derated clock is well under full power.
        let p = cpu.state_power(CpuState::Busy(Freq::from_mhz(60)));
        assert!(p < 0.5, "derated busy power {p}");
        // Wake-up latency still counts reference cycles.
        assert_eq!(cpu.wakeup_delay(), Dur::from_ns(100));
    }
}
