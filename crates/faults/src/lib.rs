//! Deterministic, seedable fault models for stress-testing LPFPS.
//!
//! The paper's guarantees (Theorem 1's safeness of `r_heu`, exact
//! power-down wake-up) hold only under an idealized model: jobs never
//! exceed their WCET, releases are punctual, wake-ups take exactly the
//! specified latency, and voltage ramps hit their nominal rate. Real DVS
//! hardware and real kernels violate all four. This crate defines the
//! perturbations the kernel can inject so experiments can answer *what
//! breaks LPFPS, and how gracefully does it degrade*:
//!
//! * [`OverrunFault`] — a job's realized demand exceeds its WCET budget
//!   (per-job probability, exponential magnitude, clamped or unbounded);
//! * [`ReleaseJitter`] — a release is noticed late, beyond the tick model;
//! * [`WakeupJitter`] — waking from power-down takes longer than the
//!   processor's nominal relock latency;
//! * [`RampDegradation`] — a voltage/clock ramp progresses slower than the
//!   nominal rate `rho` (aging, thermal throttling, a weak regulator).
//!
//! Every draw is a pure function of `(simulation seed, fault seed,
//! domain, event coordinates)` via the same counter-based SplitMix64
//! streams the execution-time models use — no draw depends on simulation
//! order, so fault streams are byte-identical across scheduling policies
//! and across sweep thread counts, and any stream can be regenerated in
//! isolation. Quantities the engine treats as integers (cycles,
//! nanoseconds) are drawn as integers; `f64` appears only in the
//! probability / magnitude parameters, mirroring the engine's own split.

use lpfps_tasks::cycles::Cycles;
use lpfps_tasks::rng::{job_stream, SplitMix64};
use lpfps_tasks::time::Dur;
use serde::Serialize;

/// Domain separators so the four fault streams (and the execution-time
/// stream, which uses the raw seed) never alias even for equal
/// coordinates.
const DOMAIN_OVERRUN: u64 = 0x5BD1_E995_97F4_A7C5;
const DOMAIN_RELEASE: u64 = 0xC2B2_AE3D_27D4_EB4F;
const DOMAIN_WAKEUP: u64 = 0x1656_67B1_9E37_79F9;
const DOMAIN_RAMP: u64 = 0x27D4_EB2F_1656_67C7;

/// Domain separator for [`core_seed`]: per-core seed derivation in
/// partitioned-multiprocessor runs.
const DOMAIN_CORE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of core `core` of a partitioned-multiprocessor run
/// from a fleet-level base seed.
///
/// Applied to both the simulation seed and the fault seed of each per-core
/// uniprocessor run, this keys every counter-based stream (execution
/// times and all four fault domains) per core. Two guarantees follow:
///
/// * **Core 0 is the identity** (`core_seed(s, 0) == s`), so a one-core
///   "fleet" reproduces the corresponding uniprocessor run byte for byte —
///   the anchor of the multicore golden-matrix gate.
/// * **Order independence across cores.** Each derived seed depends only
///   on `(seed, core)`, and every draw under it is already a pure function
///   of `(seeds, domain, event coordinates)` — so core *k*'s streams are
///   identical whether its subset is simulated first, last, in parallel
///   with the others, or standalone. Cross-core replay is pinned by tests
///   here and in `crates/core/tests/fault_safety_prop.rs`.
pub fn core_seed(seed: u64, core: usize) -> u64 {
    if core == 0 {
        return seed;
    }
    SplitMix64::new(seed ^ DOMAIN_CORE ^ core as u64).next_u64()
}

/// The stream for one fault draw: mixes the simulation seed, the fault
/// model's own seed, and a domain constant, then derives the per-event
/// stream exactly like [`job_stream`] does for execution times.
fn fault_stream(sim_seed: u64, fault_seed: u64, domain: u64, a: usize, b: u64) -> SplitMix64 {
    job_stream(sim_seed ^ fault_seed.rotate_left(17) ^ domain, a, b)
}

/// WCET overrun: with probability `probability`, a job's realized demand
/// exceeds its full WCET budget by an exponentially-distributed extra
/// (mean `magnitude` × WCET). `clamp` caps the *total* demand at
/// `clamp` × WCET; `None` leaves the exponential tail unbounded.
///
/// This is the fault that breaks Theorem 1 directly: a slowed-down job
/// that overruns was stretched on the assumption that `C_i − E_i` cycles
/// remained, so the excess lands after the planned completion bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OverrunFault {
    /// Per-job probability of overrunning, in `[0, 1]`.
    pub probability: f64,
    /// Mean of the exponential extra demand, as a fraction of the WCET.
    pub magnitude: f64,
    /// Cap on total demand as a multiple of WCET (`Some(1.5)` = at most
    /// 150 % of the budget); `None` = unbounded.
    pub clamp: Option<f64>,
}

impl OverrunFault {
    /// A clamped overrun model (the common "misbehaving but bounded"
    /// case).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (probability outside
    /// `[0, 1]`, non-positive magnitude, clamp below 1).
    pub fn clamped(probability: f64, magnitude: f64, clamp: f64) -> Self {
        let fault = OverrunFault {
            probability,
            magnitude,
            clamp: Some(clamp),
        };
        fault.validate();
        fault
    }

    /// An unbounded overrun model (pure exponential tail).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn unbounded(probability: f64, magnitude: f64) -> Self {
        let fault = OverrunFault {
            probability,
            magnitude,
            clamp: None,
        };
        fault.validate();
        fault
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.probability),
            "overrun probability must be in [0, 1]"
        );
        assert!(
            self.magnitude.is_finite() && self.magnitude > 0.0,
            "overrun magnitude must be positive"
        );
        if let Some(c) = self.clamp {
            assert!(c.is_finite() && c >= 1.0, "overrun clamp must be >= 1");
        }
    }

    /// Extra demand (beyond the WCET budget `wcet`) injected into job
    /// `job` of task `task`, in whole cycles; zero when the per-job coin
    /// flip does not fire.
    pub fn extra_cycles(
        &self,
        sim_seed: u64,
        fault_seed: u64,
        task: usize,
        job: u64,
        wcet: Cycles,
    ) -> Cycles {
        let mut s = fault_stream(sim_seed, fault_seed, DOMAIN_OVERRUN, task, job);
        if s.next_f64() >= self.probability {
            return Cycles::ZERO;
        }
        // Exponential with mean `magnitude`, as a fraction of the WCET.
        let mut frac = self.magnitude * -s.next_f64_open().ln();
        if let Some(clamp) = self.clamp {
            frac = frac.min(clamp - 1.0);
        }
        let extra = (frac * wcet.as_u64() as f64).ceil();
        // A firing overrun always exceeds the budget by at least one cycle,
        // so budget-exhaustion detection is well-defined.
        Cycles::new((extra.max(0.0) as u64).max(1))
    }

    /// The largest total demand this model can inject, as a multiple of
    /// the WCET (`None` when unbounded) — what an offline analysis would
    /// use to check schedulability of the inflated set.
    pub fn inflation_factor(&self) -> Option<f64> {
        self.clamp
    }
}

/// Release jitter beyond the tick model: the kernel notices each release
/// up to `max_delay` late (uniform, whole nanoseconds). Deadlines and
/// response times still count from the nominal arrival, so jitter eats
/// the job's slack — the standard interpretation of release jitter in
/// response-time analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ReleaseJitter {
    /// Upper bound on the per-release notice delay.
    pub max_delay: Dur,
}

impl ReleaseJitter {
    /// Uniform jitter in `[0, max_delay]`.
    ///
    /// # Panics
    ///
    /// Panics if the bound is zero (use `None` in [`FaultConfig`] for "no
    /// jitter").
    pub fn uniform(max_delay: Dur) -> Self {
        assert!(!max_delay.is_zero(), "jitter bound must be positive");
        ReleaseJitter { max_delay }
    }

    /// The notice delay for job `job` of task `task`.
    pub fn delay(&self, sim_seed: u64, fault_seed: u64, task: usize, job: u64) -> Dur {
        let mut s = fault_stream(sim_seed, fault_seed, DOMAIN_RELEASE, task, job);
        Dur::from_ns(s.next_u64() % (self.max_delay.as_ns() + 1))
    }
}

/// Wake-up-latency variance: returning from power-down takes the nominal
/// relock delay plus up to `max_extra` (uniform, whole nanoseconds). The
/// policy plans its wake timer with the nominal latency, so a drawn extra
/// can make the processor oversleep a release — the kernel reports that
/// as a timing violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WakeupJitter {
    /// Upper bound on the extra relock time per wake-up.
    pub max_extra: Dur,
}

impl WakeupJitter {
    /// Uniform extra latency in `[0, max_extra]`.
    ///
    /// # Panics
    ///
    /// Panics if the bound is zero.
    pub fn uniform(max_extra: Dur) -> Self {
        assert!(
            !max_extra.is_zero(),
            "wake-up jitter bound must be positive"
        );
        WakeupJitter { max_extra }
    }

    /// The extra latency of the `event`-th wake-up of the run.
    pub fn extra(&self, sim_seed: u64, fault_seed: u64, event: u64) -> Dur {
        let mut s = fault_stream(sim_seed, fault_seed, DOMAIN_WAKEUP, 0, event);
        Dur::from_ns(s.next_u64() % (self.max_extra.as_ns() + 1))
    }
}

/// Degraded ramp rate: each voltage/clock transition progresses at
/// `factor × rho` for a per-ramp factor drawn uniformly from
/// `[min_factor, max_factor]`. The policy still plans speed-up timers
/// with the nominal `rho`, so a degraded ramp back to full speed can
/// still be in flight when the next task arrives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RampDegradation {
    /// Slowest ramp-rate multiplier, in `(0, 1]`.
    pub min_factor: f64,
    /// Fastest ramp-rate multiplier, in `[min_factor, 1]`.
    pub max_factor: f64,
}

impl RampDegradation {
    /// Every ramp degraded by the same constant factor.
    ///
    /// # Panics
    ///
    /// Panics if the factor is outside `(0, 1]`.
    pub fn constant(factor: f64) -> Self {
        RampDegradation::uniform(factor, factor)
    }

    /// Per-ramp factors drawn uniformly from `[min_factor, max_factor]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not inside `(0, 1]` or is inverted.
    pub fn uniform(min_factor: f64, max_factor: f64) -> Self {
        assert!(
            min_factor > 0.0 && max_factor <= 1.0 && min_factor <= max_factor,
            "ramp degradation factors must satisfy 0 < min <= max <= 1"
        );
        RampDegradation {
            min_factor,
            max_factor,
        }
    }

    /// The rate multiplier of the `event`-th ramp of the run.
    pub fn factor(&self, sim_seed: u64, fault_seed: u64, event: u64) -> f64 {
        if self.min_factor == self.max_factor {
            return self.min_factor;
        }
        let mut s = fault_stream(sim_seed, fault_seed, DOMAIN_RAMP, 0, event);
        self.min_factor + (self.max_factor - self.min_factor) * s.next_f64()
    }
}

/// The complete fault model of one simulation: which perturbations are
/// active, plus the fault seed that (together with the simulation seed)
/// keys every draw. [`FaultConfig::none`] — the default — injects
/// nothing and reproduces the paper's idealized model exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FaultConfig {
    /// Fault-stream seed, mixed with the simulation seed so sweeping
    /// either varies the stream.
    pub seed: u64,
    /// WCET overruns, if enabled.
    pub overrun: Option<OverrunFault>,
    /// Release-notice jitter, if enabled.
    pub release_jitter: Option<ReleaseJitter>,
    /// Wake-up-latency variance, if enabled.
    pub wakeup_jitter: Option<WakeupJitter>,
    /// Ramp-rate degradation, if enabled.
    pub ramp_degradation: Option<RampDegradation>,
}

impl FaultConfig {
    /// No faults: the idealized model.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// True when no perturbation is active (the engine takes its exact
    /// fast paths).
    pub fn is_none(&self) -> bool {
        self.overrun.is_none()
            && self.release_jitter.is_none()
            && self.wakeup_jitter.is_none()
            && self.ramp_degradation.is_none()
    }

    /// Sets the fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables WCET overruns.
    pub fn with_overrun(mut self, fault: OverrunFault) -> Self {
        self.overrun = Some(fault);
        self
    }

    /// Enables release-notice jitter.
    pub fn with_release_jitter(mut self, fault: ReleaseJitter) -> Self {
        self.release_jitter = Some(fault);
        self
    }

    /// Enables wake-up-latency variance.
    pub fn with_wakeup_jitter(mut self, fault: WakeupJitter) -> Self {
        self.wakeup_jitter = Some(fault);
        self
    }

    /// Enables ramp-rate degradation.
    pub fn with_ramp_degradation(mut self, fault: RampDegradation) -> Self {
        self.ramp_degradation = Some(fault);
        self
    }

    /// A compact label of the active perturbations for reports
    /// (`"none"`, `"overrun"`, `"overrun+ramp"`, ...).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.overrun.is_some() {
            parts.push("overrun");
        }
        if self.release_jitter.is_some() {
            parts.push("jitter");
        }
        if self.wakeup_jitter.is_some() {
            parts.push("wakeup");
        }
        if self.ramp_degradation.is_some() {
            parts.push("ramp");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_reproducible() {
        let o = OverrunFault::clamped(0.5, 0.3, 1.5);
        for job in 0..50 {
            assert_eq!(
                o.extra_cycles(7, 3, 1, job, Cycles::new(1_000)),
                o.extra_cycles(7, 3, 1, job, Cycles::new(1_000))
            );
        }
        let j = ReleaseJitter::uniform(Dur::from_us(5));
        assert_eq!(j.delay(7, 3, 0, 9), j.delay(7, 3, 0, 9));
        let w = WakeupJitter::uniform(Dur::from_us(2));
        assert_eq!(w.extra(7, 3, 4), w.extra(7, 3, 4));
        let r = RampDegradation::uniform(0.2, 0.9);
        assert_eq!(r.factor(7, 3, 4).to_bits(), r.factor(7, 3, 4).to_bits());
    }

    #[test]
    fn streams_differ_across_domains_and_seeds() {
        // The same coordinates must not alias across fault kinds.
        let j = ReleaseJitter::uniform(Dur::from_ns(u64::MAX - 1));
        let w = WakeupJitter::uniform(Dur::from_ns(u64::MAX - 1));
        assert_ne!(j.delay(1, 2, 0, 5), w.extra(1, 2, 5));
        assert_ne!(j.delay(1, 2, 0, 5), j.delay(1, 3, 0, 5));
        assert_ne!(j.delay(1, 2, 0, 5), j.delay(2, 2, 0, 5));
    }

    #[test]
    fn overrun_probability_zero_never_fires() {
        let o = OverrunFault::clamped(0.0, 0.5, 2.0);
        for job in 0..200 {
            assert_eq!(o.extra_cycles(1, 0, 0, job, Cycles::new(500)), Cycles::ZERO);
        }
    }

    #[test]
    fn overrun_probability_one_always_fires_with_at_least_one_cycle() {
        let o = OverrunFault::clamped(1.0, 0.25, 1.5);
        for job in 0..200 {
            let extra = o.extra_cycles(1, 0, 0, job, Cycles::new(1_000));
            assert!(!extra.is_zero());
            // Clamp 1.5x: extra at most half the budget (rounded up).
            assert!(extra.as_u64() <= 501, "extra {extra} beyond clamp");
        }
    }

    #[test]
    fn overrun_firing_rate_tracks_probability() {
        let o = OverrunFault::unbounded(0.3, 0.2);
        let n = 20_000;
        let fired = (0..n)
            .filter(|&job| !o.extra_cycles(42, 0, 0, job, Cycles::new(1_000)).is_zero())
            .count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "firing rate {rate}");
    }

    #[test]
    fn unbounded_overruns_exceed_any_clamp_eventually() {
        let clamped = OverrunFault::clamped(1.0, 0.5, 1.2);
        let unbounded = OverrunFault::unbounded(1.0, 0.5);
        let wcet = Cycles::new(1_000);
        let max_clamped = (0..500)
            .map(|j| clamped.extra_cycles(9, 0, 0, j, wcet).as_u64())
            .max()
            .unwrap();
        let max_unbounded = (0..500)
            .map(|j| unbounded.extra_cycles(9, 0, 0, j, wcet).as_u64())
            .max()
            .unwrap();
        assert!(max_clamped <= 201, "clamp violated: {max_clamped}");
        assert!(max_unbounded > max_clamped);
    }

    #[test]
    fn jitter_respects_its_bound() {
        let j = ReleaseJitter::uniform(Dur::from_us(3));
        let w = WakeupJitter::uniform(Dur::from_ns(77));
        for e in 0..2_000 {
            assert!(j.delay(5, 1, 2, e) <= Dur::from_us(3));
            assert!(w.extra(5, 1, e) <= Dur::from_ns(77));
        }
    }

    #[test]
    fn ramp_factors_stay_in_range() {
        let r = RampDegradation::uniform(0.25, 0.75);
        for e in 0..2_000 {
            let f = r.factor(11, 0, e);
            assert!((0.25..=0.75).contains(&f), "factor {f}");
        }
        assert_eq!(RampDegradation::constant(0.5).factor(11, 0, 3), 0.5);
    }

    #[test]
    fn core_seed_is_identity_on_core_zero_and_distinct_elsewhere() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(core_seed(seed, 0), seed, "core 0 must be the identity");
        }
        // Distinct cores of the same base seed get distinct streams.
        let seeds: Vec<u64> = (0..16).map(|core| core_seed(42, core)).collect();
        for (a, sa) in seeds.iter().enumerate() {
            for (b, sb) in seeds.iter().enumerate() {
                if a != b {
                    assert_ne!(sa, sb, "cores {a} and {b} alias");
                }
            }
        }
    }

    #[test]
    fn per_core_fault_streams_replay_independently_of_core_order() {
        // A core's stream is a pure function of (base seeds, core,
        // coordinates): drawing core 2's overruns before, after, or
        // without core 1's yields the same values.
        let o = OverrunFault::clamped(0.5, 0.3, 1.5);
        let draw = |core: usize, job: u64| {
            o.extra_cycles(
                core_seed(42, core),
                core_seed(7, core),
                0,
                job,
                Cycles::new(1_000),
            )
        };
        let core2_alone: Vec<_> = (0..50).map(|j| draw(2, j)).collect();
        let _core1_first: Vec<_> = (0..50).map(|j| draw(1, j)).collect();
        let core2_after: Vec<_> = (0..50).map(|j| draw(2, j)).collect();
        assert_eq!(core2_alone, core2_after);
        // And distinct cores see distinct streams for equal coordinates.
        assert_ne!(core2_alone, (0..50).map(|j| draw(1, j)).collect::<Vec<_>>());
    }

    #[test]
    fn config_label_names_active_faults() {
        assert_eq!(FaultConfig::none().label(), "none");
        assert!(FaultConfig::none().is_none());
        let cfg = FaultConfig::none()
            .with_overrun(OverrunFault::clamped(0.1, 0.2, 1.5))
            .with_ramp_degradation(RampDegradation::constant(0.5));
        assert_eq!(cfg.label(), "overrun+ramp");
        assert!(!cfg.is_none());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = OverrunFault::clamped(1.5, 0.2, 1.5);
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_below_one_rejected() {
        let _ = OverrunFault::clamped(0.5, 0.2, 0.9);
    }
}
