/root/repo/target/debug/examples/design_space-e33fb994e0f77b7b.d: crates/core/../../examples/design_space.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space-e33fb994e0f77b7b.rmeta: crates/core/../../examples/design_space.rs Cargo.toml

crates/core/../../examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
