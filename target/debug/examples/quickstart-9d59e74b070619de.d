/root/repo/target/debug/examples/quickstart-9d59e74b070619de.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d59e74b070619de: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
