/root/repo/target/debug/examples/design_space-2c7b6324d2ae5577.d: crates/core/../../examples/design_space.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space-2c7b6324d2ae5577.rmeta: crates/core/../../examples/design_space.rs Cargo.toml

crates/core/../../examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
