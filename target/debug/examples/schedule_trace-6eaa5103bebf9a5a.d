/root/repo/target/debug/examples/schedule_trace-6eaa5103bebf9a5a.d: crates/core/../../examples/schedule_trace.rs

/root/repo/target/debug/examples/schedule_trace-6eaa5103bebf9a5a: crates/core/../../examples/schedule_trace.rs

crates/core/../../examples/schedule_trace.rs:
