/root/repo/target/debug/examples/avionics_power-fb91ab1a42aff944.d: crates/core/../../examples/avionics_power.rs

/root/repo/target/debug/examples/avionics_power-fb91ab1a42aff944: crates/core/../../examples/avionics_power.rs

crates/core/../../examples/avionics_power.rs:
