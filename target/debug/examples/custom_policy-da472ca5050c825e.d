/root/repo/target/debug/examples/custom_policy-da472ca5050c825e.d: crates/core/../../examples/custom_policy.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_policy-da472ca5050c825e.rmeta: crates/core/../../examples/custom_policy.rs Cargo.toml

crates/core/../../examples/custom_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
