/root/repo/target/debug/examples/quickstart-bdcd93a10ca71c1e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bdcd93a10ca71c1e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
