/root/repo/target/debug/examples/custom_policy-6cac9e4dffdc01a3.d: crates/core/../../examples/custom_policy.rs

/root/repo/target/debug/examples/custom_policy-6cac9e4dffdc01a3: crates/core/../../examples/custom_policy.rs

crates/core/../../examples/custom_policy.rs:
