/root/repo/target/debug/examples/custom_policy-fee7a121606ee77f.d: crates/core/../../examples/custom_policy.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_policy-fee7a121606ee77f.rmeta: crates/core/../../examples/custom_policy.rs Cargo.toml

crates/core/../../examples/custom_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
