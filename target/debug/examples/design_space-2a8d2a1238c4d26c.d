/root/repo/target/debug/examples/design_space-2a8d2a1238c4d26c.d: crates/core/../../examples/design_space.rs

/root/repo/target/debug/examples/design_space-2a8d2a1238c4d26c: crates/core/../../examples/design_space.rs

crates/core/../../examples/design_space.rs:
