/root/repo/target/debug/examples/custom_policy-f451587f75020525.d: crates/core/../../examples/custom_policy.rs

/root/repo/target/debug/examples/custom_policy-f451587f75020525: crates/core/../../examples/custom_policy.rs

crates/core/../../examples/custom_policy.rs:
