/root/repo/target/debug/examples/avionics_power-4f77a827946659ba.d: crates/core/../../examples/avionics_power.rs

/root/repo/target/debug/examples/avionics_power-4f77a827946659ba: crates/core/../../examples/avionics_power.rs

crates/core/../../examples/avionics_power.rs:
