/root/repo/target/debug/examples/custom_policy-81bebbb8ee0cc586.d: crates/core/../../examples/custom_policy.rs

/root/repo/target/debug/examples/custom_policy-81bebbb8ee0cc586: crates/core/../../examples/custom_policy.rs

crates/core/../../examples/custom_policy.rs:
