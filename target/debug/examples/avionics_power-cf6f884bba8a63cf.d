/root/repo/target/debug/examples/avionics_power-cf6f884bba8a63cf.d: crates/core/../../examples/avionics_power.rs

/root/repo/target/debug/examples/avionics_power-cf6f884bba8a63cf: crates/core/../../examples/avionics_power.rs

crates/core/../../examples/avionics_power.rs:
