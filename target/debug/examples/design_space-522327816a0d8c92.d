/root/repo/target/debug/examples/design_space-522327816a0d8c92.d: crates/core/../../examples/design_space.rs

/root/repo/target/debug/examples/design_space-522327816a0d8c92: crates/core/../../examples/design_space.rs

crates/core/../../examples/design_space.rs:
