/root/repo/target/debug/examples/schedule_trace-ad6151e244cdf87f.d: crates/core/../../examples/schedule_trace.rs Cargo.toml

/root/repo/target/debug/examples/libschedule_trace-ad6151e244cdf87f.rmeta: crates/core/../../examples/schedule_trace.rs Cargo.toml

crates/core/../../examples/schedule_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
