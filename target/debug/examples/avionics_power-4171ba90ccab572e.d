/root/repo/target/debug/examples/avionics_power-4171ba90ccab572e.d: crates/core/../../examples/avionics_power.rs Cargo.toml

/root/repo/target/debug/examples/libavionics_power-4171ba90ccab572e.rmeta: crates/core/../../examples/avionics_power.rs Cargo.toml

crates/core/../../examples/avionics_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
