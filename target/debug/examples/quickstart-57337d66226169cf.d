/root/repo/target/debug/examples/quickstart-57337d66226169cf.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-57337d66226169cf: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
