/root/repo/target/debug/examples/avionics_power-9cae450a71cfb17e.d: crates/core/../../examples/avionics_power.rs Cargo.toml

/root/repo/target/debug/examples/libavionics_power-9cae450a71cfb17e.rmeta: crates/core/../../examples/avionics_power.rs Cargo.toml

crates/core/../../examples/avionics_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
