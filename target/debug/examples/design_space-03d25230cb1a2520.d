/root/repo/target/debug/examples/design_space-03d25230cb1a2520.d: crates/core/../../examples/design_space.rs

/root/repo/target/debug/examples/design_space-03d25230cb1a2520: crates/core/../../examples/design_space.rs

crates/core/../../examples/design_space.rs:
