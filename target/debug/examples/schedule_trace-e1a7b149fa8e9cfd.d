/root/repo/target/debug/examples/schedule_trace-e1a7b149fa8e9cfd.d: crates/core/../../examples/schedule_trace.rs

/root/repo/target/debug/examples/schedule_trace-e1a7b149fa8e9cfd: crates/core/../../examples/schedule_trace.rs

crates/core/../../examples/schedule_trace.rs:
