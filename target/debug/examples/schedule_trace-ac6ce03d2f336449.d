/root/repo/target/debug/examples/schedule_trace-ac6ce03d2f336449.d: crates/core/../../examples/schedule_trace.rs

/root/repo/target/debug/examples/schedule_trace-ac6ce03d2f336449: crates/core/../../examples/schedule_trace.rs

crates/core/../../examples/schedule_trace.rs:
