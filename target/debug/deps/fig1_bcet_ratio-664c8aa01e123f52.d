/root/repo/target/debug/deps/fig1_bcet_ratio-664c8aa01e123f52.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-664c8aa01e123f52: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
