/root/repo/target/debug/deps/lpfps_workloads-fa52228ae052aa6f.d: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/debug/deps/liblpfps_workloads-fa52228ae052aa6f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avionics.rs:
crates/workloads/src/bcet_figure1.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/cnc.rs:
crates/workloads/src/flight.rs:
crates/workloads/src/ins.rs:
crates/workloads/src/table1.rs:
