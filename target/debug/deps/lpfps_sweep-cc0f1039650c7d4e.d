/root/repo/target/debug/deps/lpfps_sweep-cc0f1039650c7d4e.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/lpfps_sweep-cc0f1039650c7d4e: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
