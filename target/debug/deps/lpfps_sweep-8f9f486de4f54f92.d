/root/repo/target/debug/deps/lpfps_sweep-8f9f486de4f54f92.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/lpfps_sweep-8f9f486de4f54f92: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
