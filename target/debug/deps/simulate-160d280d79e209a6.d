/root/repo/target/debug/deps/simulate-160d280d79e209a6.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-160d280d79e209a6: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
