/root/repo/target/debug/deps/ablation_tick-60d7c5584cc8bf47.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-60d7c5584cc8bf47: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
