/root/repo/target/debug/deps/lpfps_edf-430080714b7b3cc8.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/liblpfps_edf-430080714b7b3cc8.rlib: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/liblpfps_edf-430080714b7b3cc8.rmeta: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
