/root/repo/target/debug/deps/ablation_overhead-3bf74a14f3d3ea65.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-3bf74a14f3d3ea65: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
