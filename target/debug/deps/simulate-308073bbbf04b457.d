/root/repo/target/debug/deps/simulate-308073bbbf04b457.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-308073bbbf04b457: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
