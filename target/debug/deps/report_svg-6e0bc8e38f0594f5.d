/root/repo/target/debug/deps/report_svg-6e0bc8e38f0594f5.d: crates/bench/src/bin/report_svg.rs Cargo.toml

/root/repo/target/debug/deps/libreport_svg-6e0bc8e38f0594f5.rmeta: crates/bench/src/bin/report_svg.rs Cargo.toml

crates/bench/src/bin/report_svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
