/root/repo/target/debug/deps/fig8_power-406485ec93de2cce.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-406485ec93de2cce: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
