/root/repo/target/debug/deps/ablation_sleep_modes-5d88cd025d6898be.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-5d88cd025d6898be: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
