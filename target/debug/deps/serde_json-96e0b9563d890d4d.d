/root/repo/target/debug/deps/serde_json-96e0b9563d890d4d.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-96e0b9563d890d4d: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
