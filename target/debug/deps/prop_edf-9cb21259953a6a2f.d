/root/repo/target/debug/deps/prop_edf-9cb21259953a6a2f.d: crates/edf/tests/prop_edf.rs Cargo.toml

/root/repo/target/debug/deps/libprop_edf-9cb21259953a6a2f.rmeta: crates/edf/tests/prop_edf.rs Cargo.toml

crates/edf/tests/prop_edf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
