/root/repo/target/debug/deps/lpfps_bench-ff15160bbcb2bb70.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-ff15160bbcb2bb70.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-ff15160bbcb2bb70.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
