/root/repo/target/debug/deps/ablation_sleep_modes-2710c705ad627671.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-2710c705ad627671: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
