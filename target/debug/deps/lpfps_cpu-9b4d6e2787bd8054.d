/root/repo/target/debug/deps/lpfps_cpu-9b4d6e2787bd8054.d: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_cpu-9b4d6e2787bd8054.rmeta: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/ladder.rs:
crates/cpu/src/modes.rs:
crates/cpu/src/power.rs:
crates/cpu/src/ramp.rs:
crates/cpu/src/spec.rs:
crates/cpu/src/state.rs:
crates/cpu/src/vf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
