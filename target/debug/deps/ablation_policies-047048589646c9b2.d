/root/repo/target/debug/deps/ablation_policies-047048589646c9b2.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-047048589646c9b2: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
