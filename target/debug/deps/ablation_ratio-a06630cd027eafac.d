/root/repo/target/debug/deps/ablation_ratio-a06630cd027eafac.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-a06630cd027eafac: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
