/root/repo/target/debug/deps/energy_ordering-dce6349c5bc6d58f.d: crates/core/tests/energy_ordering.rs

/root/repo/target/debug/deps/energy_ordering-dce6349c5bc6d58f: crates/core/tests/energy_ordering.rs

crates/core/tests/energy_ordering.rs:
