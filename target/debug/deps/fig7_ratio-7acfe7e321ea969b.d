/root/repo/target/debug/deps/fig7_ratio-7acfe7e321ea969b.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-7acfe7e321ea969b: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
