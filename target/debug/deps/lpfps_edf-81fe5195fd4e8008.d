/root/repo/target/debug/deps/lpfps_edf-81fe5195fd4e8008.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_edf-81fe5195fd4e8008.rmeta: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs Cargo.toml

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
