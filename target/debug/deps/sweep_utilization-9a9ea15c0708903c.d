/root/repo/target/debug/deps/sweep_utilization-9a9ea15c0708903c.d: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_utilization-9a9ea15c0708903c.rmeta: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

crates/bench/src/bin/sweep_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
