/root/repo/target/debug/deps/determinism-2674459e76c7b85a.d: crates/sweep/tests/determinism.rs

/root/repo/target/debug/deps/determinism-2674459e76c7b85a: crates/sweep/tests/determinism.rs

crates/sweep/tests/determinism.rs:
