/root/repo/target/debug/deps/lpfps_edf-bdea84d8732a53f8.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/lpfps_edf-bdea84d8732a53f8: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
