/root/repo/target/debug/deps/ablation_shutdown-765f729ca0370339.d: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shutdown-765f729ca0370339.rmeta: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

crates/bench/src/bin/ablation_shutdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
