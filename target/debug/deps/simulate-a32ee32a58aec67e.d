/root/repo/target/debug/deps/simulate-a32ee32a58aec67e.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-a32ee32a58aec67e.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
