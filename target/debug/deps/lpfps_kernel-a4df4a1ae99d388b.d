/root/repo/target/debug/deps/lpfps_kernel-a4df4a1ae99d388b.d: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_kernel-a4df4a1ae99d388b.rmeta: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/engine.rs:
crates/kernel/src/gantt.rs:
crates/kernel/src/policy.rs:
crates/kernel/src/queues.rs:
crates/kernel/src/report.rs:
crates/kernel/src/stats.rs:
crates/kernel/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
