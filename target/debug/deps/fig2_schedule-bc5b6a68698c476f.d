/root/repo/target/debug/deps/fig2_schedule-bc5b6a68698c476f.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-bc5b6a68698c476f: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
