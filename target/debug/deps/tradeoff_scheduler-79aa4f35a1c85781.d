/root/repo/target/debug/deps/tradeoff_scheduler-79aa4f35a1c85781.d: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libtradeoff_scheduler-79aa4f35a1c85781.rmeta: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

crates/bench/src/bin/tradeoff_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
