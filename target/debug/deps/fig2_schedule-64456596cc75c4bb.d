/root/repo/target/debug/deps/fig2_schedule-64456596cc75c4bb.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-64456596cc75c4bb: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
