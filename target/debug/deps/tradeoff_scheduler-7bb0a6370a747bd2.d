/root/repo/target/debug/deps/tradeoff_scheduler-7bb0a6370a747bd2.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-7bb0a6370a747bd2: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
