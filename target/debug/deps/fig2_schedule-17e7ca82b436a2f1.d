/root/repo/target/debug/deps/fig2_schedule-17e7ca82b436a2f1.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-17e7ca82b436a2f1: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
