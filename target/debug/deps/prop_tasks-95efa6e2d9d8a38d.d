/root/repo/target/debug/deps/prop_tasks-95efa6e2d9d8a38d.d: crates/tasks/tests/prop_tasks.rs

/root/repo/target/debug/deps/prop_tasks-95efa6e2d9d8a38d: crates/tasks/tests/prop_tasks.rs

crates/tasks/tests/prop_tasks.rs:
