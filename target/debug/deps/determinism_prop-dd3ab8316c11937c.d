/root/repo/target/debug/deps/determinism_prop-dd3ab8316c11937c.d: crates/sweep/tests/determinism_prop.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_prop-dd3ab8316c11937c.rmeta: crates/sweep/tests/determinism_prop.rs Cargo.toml

crates/sweep/tests/determinism_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
