/root/repo/target/debug/deps/table2_summary-a06372ed6cf86872.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-a06372ed6cf86872: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
