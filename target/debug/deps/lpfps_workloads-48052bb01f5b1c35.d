/root/repo/target/debug/deps/lpfps_workloads-48052bb01f5b1c35.d: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_workloads-48052bb01f5b1c35.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/avionics.rs:
crates/workloads/src/bcet_figure1.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/cnc.rs:
crates/workloads/src/flight.rs:
crates/workloads/src/ins.rs:
crates/workloads/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
