/root/repo/target/debug/deps/analysis_vs_sim-6658eb31161e8ff8.d: crates/core/tests/analysis_vs_sim.rs

/root/repo/target/debug/deps/analysis_vs_sim-6658eb31161e8ff8: crates/core/tests/analysis_vs_sim.rs

crates/core/tests/analysis_vs_sim.rs:
