/root/repo/target/debug/deps/lpfps_bench-52d86f3be6f8c4a3.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/lpfps_bench-52d86f3be6f8c4a3: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
