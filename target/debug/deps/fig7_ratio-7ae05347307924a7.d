/root/repo/target/debug/deps/fig7_ratio-7ae05347307924a7.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-7ae05347307924a7: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
