/root/repo/target/debug/deps/fig7_ratio-ae874ad6615c9724.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-ae874ad6615c9724: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
