/root/repo/target/debug/deps/ablation_sleep_modes-0615ab7b38afc146.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-0615ab7b38afc146: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
