/root/repo/target/debug/deps/report_svg-d57a1721c382121d.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-d57a1721c382121d: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
