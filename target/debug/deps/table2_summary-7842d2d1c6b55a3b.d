/root/repo/target/debug/deps/table2_summary-7842d2d1c6b55a3b.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-7842d2d1c6b55a3b: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
