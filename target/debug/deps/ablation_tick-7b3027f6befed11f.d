/root/repo/target/debug/deps/ablation_tick-7b3027f6befed11f.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-7b3027f6befed11f: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
