/root/repo/target/debug/deps/lpfps_tasks-c030c8d3d824a8fb.d: crates/tasks/src/lib.rs crates/tasks/src/analysis/mod.rs crates/tasks/src/analysis/breakdown.rs crates/tasks/src/analysis/busy_period.rs crates/tasks/src/analysis/hyperperiod.rs crates/tasks/src/analysis/opa.rs crates/tasks/src/analysis/response_time.rs crates/tasks/src/analysis/sensitivity.rs crates/tasks/src/analysis/utilization.rs crates/tasks/src/cycles.rs crates/tasks/src/exec/mod.rs crates/tasks/src/exec/bimodal.rs crates/tasks/src/exec/constant.rs crates/tasks/src/exec/cyclic.rs crates/tasks/src/exec/gaussian.rs crates/tasks/src/exec/uniform.rs crates/tasks/src/freq.rs crates/tasks/src/gen.rs crates/tasks/src/priority.rs crates/tasks/src/rng.rs crates/tasks/src/task.rs crates/tasks/src/taskset.rs crates/tasks/src/time.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_tasks-c030c8d3d824a8fb.rmeta: crates/tasks/src/lib.rs crates/tasks/src/analysis/mod.rs crates/tasks/src/analysis/breakdown.rs crates/tasks/src/analysis/busy_period.rs crates/tasks/src/analysis/hyperperiod.rs crates/tasks/src/analysis/opa.rs crates/tasks/src/analysis/response_time.rs crates/tasks/src/analysis/sensitivity.rs crates/tasks/src/analysis/utilization.rs crates/tasks/src/cycles.rs crates/tasks/src/exec/mod.rs crates/tasks/src/exec/bimodal.rs crates/tasks/src/exec/constant.rs crates/tasks/src/exec/cyclic.rs crates/tasks/src/exec/gaussian.rs crates/tasks/src/exec/uniform.rs crates/tasks/src/freq.rs crates/tasks/src/gen.rs crates/tasks/src/priority.rs crates/tasks/src/rng.rs crates/tasks/src/task.rs crates/tasks/src/taskset.rs crates/tasks/src/time.rs Cargo.toml

crates/tasks/src/lib.rs:
crates/tasks/src/analysis/mod.rs:
crates/tasks/src/analysis/breakdown.rs:
crates/tasks/src/analysis/busy_period.rs:
crates/tasks/src/analysis/hyperperiod.rs:
crates/tasks/src/analysis/opa.rs:
crates/tasks/src/analysis/response_time.rs:
crates/tasks/src/analysis/sensitivity.rs:
crates/tasks/src/analysis/utilization.rs:
crates/tasks/src/cycles.rs:
crates/tasks/src/exec/mod.rs:
crates/tasks/src/exec/bimodal.rs:
crates/tasks/src/exec/constant.rs:
crates/tasks/src/exec/cyclic.rs:
crates/tasks/src/exec/gaussian.rs:
crates/tasks/src/exec/uniform.rs:
crates/tasks/src/freq.rs:
crates/tasks/src/gen.rs:
crates/tasks/src/priority.rs:
crates/tasks/src/rng.rs:
crates/tasks/src/task.rs:
crates/tasks/src/taskset.rs:
crates/tasks/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
