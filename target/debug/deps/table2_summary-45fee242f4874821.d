/root/repo/target/debug/deps/table2_summary-45fee242f4874821.d: crates/bench/src/bin/table2_summary.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_summary-45fee242f4874821.rmeta: crates/bench/src/bin/table2_summary.rs Cargo.toml

crates/bench/src/bin/table2_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
