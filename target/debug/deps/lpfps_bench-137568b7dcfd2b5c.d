/root/repo/target/debug/deps/lpfps_bench-137568b7dcfd2b5c.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/lpfps_bench-137568b7dcfd2b5c: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
