/root/repo/target/debug/deps/lpfps_sweep-e5467f0b52c186bb.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-e5467f0b52c186bb.rlib: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-e5467f0b52c186bb.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
