/root/repo/target/debug/deps/lpfps_sweep-478266580d8a30ae.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-478266580d8a30ae.rlib: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-478266580d8a30ae.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
