/root/repo/target/debug/deps/safety_matrix-904236cba5036e9d.d: crates/core/tests/safety_matrix.rs

/root/repo/target/debug/deps/safety_matrix-904236cba5036e9d: crates/core/tests/safety_matrix.rs

crates/core/tests/safety_matrix.rs:
