/root/repo/target/debug/deps/table2_summary-3b6c655ff6f61f2b.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-3b6c655ff6f61f2b: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
