/root/repo/target/debug/deps/ablation_sleep_modes-b2735636f521a62e.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-b2735636f521a62e: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
