/root/repo/target/debug/deps/lpfps-89ca126961634fc5.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/lpfps-89ca126961634fc5: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
