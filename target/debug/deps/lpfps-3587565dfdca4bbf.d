/root/repo/target/debug/deps/lpfps-3587565dfdca4bbf.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-3587565dfdca4bbf.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-3587565dfdca4bbf.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
