/root/repo/target/debug/deps/ablation_ladder-b2e2f7658ce749ab.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-b2e2f7658ce749ab: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
