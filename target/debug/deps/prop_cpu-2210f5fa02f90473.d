/root/repo/target/debug/deps/prop_cpu-2210f5fa02f90473.d: crates/cpu/tests/prop_cpu.rs

/root/repo/target/debug/deps/prop_cpu-2210f5fa02f90473: crates/cpu/tests/prop_cpu.rs

crates/cpu/tests/prop_cpu.rs:
