/root/repo/target/debug/deps/fault_sweep-df84346ccb86816e.d: crates/bench/src/bin/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-df84346ccb86816e.rmeta: crates/bench/src/bin/fault_sweep.rs Cargo.toml

crates/bench/src/bin/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
