/root/repo/target/debug/deps/ablation_sleep_modes-1d4f74edbab2b4f5.d: crates/bench/src/bin/ablation_sleep_modes.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sleep_modes-1d4f74edbab2b4f5.rmeta: crates/bench/src/bin/ablation_sleep_modes.rs Cargo.toml

crates/bench/src/bin/ablation_sleep_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
