/root/repo/target/debug/deps/fault_safety_prop-812283b4cbf6cd08.d: crates/core/tests/fault_safety_prop.rs

/root/repo/target/debug/deps/fault_safety_prop-812283b4cbf6cd08: crates/core/tests/fault_safety_prop.rs

crates/core/tests/fault_safety_prop.rs:
