/root/repo/target/debug/deps/energy_ordering-3a81f1572bc9f9b0.d: crates/core/tests/energy_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_ordering-3a81f1572bc9f9b0.rmeta: crates/core/tests/energy_ordering.rs Cargo.toml

crates/core/tests/energy_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
