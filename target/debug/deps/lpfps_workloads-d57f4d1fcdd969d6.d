/root/repo/target/debug/deps/lpfps_workloads-d57f4d1fcdd969d6.d: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/debug/deps/liblpfps_workloads-d57f4d1fcdd969d6.rlib: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/debug/deps/liblpfps_workloads-d57f4d1fcdd969d6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avionics.rs:
crates/workloads/src/bcet_figure1.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/cnc.rs:
crates/workloads/src/flight.rs:
crates/workloads/src/ins.rs:
crates/workloads/src/table1.rs:
