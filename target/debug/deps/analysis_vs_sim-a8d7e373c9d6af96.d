/root/repo/target/debug/deps/analysis_vs_sim-a8d7e373c9d6af96.d: crates/core/tests/analysis_vs_sim.rs

/root/repo/target/debug/deps/analysis_vs_sim-a8d7e373c9d6af96: crates/core/tests/analysis_vs_sim.rs

crates/core/tests/analysis_vs_sim.rs:
