/root/repo/target/debug/deps/fig8_power-bbaeb7cb2c301650.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-bbaeb7cb2c301650: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
