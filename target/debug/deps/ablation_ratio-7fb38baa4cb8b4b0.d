/root/repo/target/debug/deps/ablation_ratio-7fb38baa4cb8b4b0.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-7fb38baa4cb8b4b0: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
