/root/repo/target/debug/deps/ablation_ratio-0a92fa919c6b371e.d: crates/bench/src/bin/ablation_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ratio-0a92fa919c6b371e.rmeta: crates/bench/src/bin/ablation_ratio.rs Cargo.toml

crates/bench/src/bin/ablation_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
