/root/repo/target/debug/deps/ablation_ratio-40ad701d5be4ddac.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-40ad701d5be4ddac: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
