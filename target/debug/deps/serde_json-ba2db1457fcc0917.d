/root/repo/target/debug/deps/serde_json-ba2db1457fcc0917.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ba2db1457fcc0917.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
