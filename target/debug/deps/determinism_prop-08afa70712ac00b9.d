/root/repo/target/debug/deps/determinism_prop-08afa70712ac00b9.d: crates/sweep/tests/determinism_prop.rs

/root/repo/target/debug/deps/determinism_prop-08afa70712ac00b9: crates/sweep/tests/determinism_prop.rs

crates/sweep/tests/determinism_prop.rs:
