/root/repo/target/debug/deps/analysis_vs_sim-4af27af1a31f668d.d: crates/core/tests/analysis_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_vs_sim-4af27af1a31f668d.rmeta: crates/core/tests/analysis_vs_sim.rs Cargo.toml

crates/core/tests/analysis_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
