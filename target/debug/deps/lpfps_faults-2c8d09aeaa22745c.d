/root/repo/target/debug/deps/lpfps_faults-2c8d09aeaa22745c.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/liblpfps_faults-2c8d09aeaa22745c.rlib: crates/faults/src/lib.rs

/root/repo/target/debug/deps/liblpfps_faults-2c8d09aeaa22745c.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
