/root/repo/target/debug/deps/ablation_policies-f96fede1227bf2b3.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-f96fede1227bf2b3: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
