/root/repo/target/debug/deps/lpfps_bench-5c4b364142561d9d.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/lpfps_bench-5c4b364142561d9d: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
