/root/repo/target/debug/deps/lpfps_bench-e82f4cacedf325d3.d: crates/bench/src/lib.rs crates/bench/src/chart.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_bench-e82f4cacedf325d3.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
