/root/repo/target/debug/deps/ablation_ladder-09b96ce5ff91aea4.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-09b96ce5ff91aea4: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
