/root/repo/target/debug/deps/lpfps-11aca77f56c908df.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-11aca77f56c908df.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
