/root/repo/target/debug/deps/energy_ordering-d844c42e1c9783b7.d: crates/core/tests/energy_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_ordering-d844c42e1c9783b7.rmeta: crates/core/tests/energy_ordering.rs Cargo.toml

crates/core/tests/energy_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
