/root/repo/target/debug/deps/lpfps_cpu-b27d041b1f3ad2e4.d: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/debug/deps/liblpfps_cpu-b27d041b1f3ad2e4.rlib: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/debug/deps/liblpfps_cpu-b27d041b1f3ad2e4.rmeta: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

crates/cpu/src/lib.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/ladder.rs:
crates/cpu/src/modes.rs:
crates/cpu/src/power.rs:
crates/cpu/src/ramp.rs:
crates/cpu/src/spec.rs:
crates/cpu/src/state.rs:
crates/cpu/src/vf.rs:
