/root/repo/target/debug/deps/ablation_tick-6ae231213c7974bc.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-6ae231213c7974bc: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
