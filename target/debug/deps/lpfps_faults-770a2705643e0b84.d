/root/repo/target/debug/deps/lpfps_faults-770a2705643e0b84.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_faults-770a2705643e0b84.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
