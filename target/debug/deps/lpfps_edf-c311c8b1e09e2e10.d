/root/repo/target/debug/deps/lpfps_edf-c311c8b1e09e2e10.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/liblpfps_edf-c311c8b1e09e2e10.rmeta: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
