/root/repo/target/debug/deps/fig1_bcet_ratio-f62d758db4a6d926.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-f62d758db4a6d926: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
