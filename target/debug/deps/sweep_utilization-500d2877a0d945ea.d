/root/repo/target/debug/deps/sweep_utilization-500d2877a0d945ea.d: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_utilization-500d2877a0d945ea.rmeta: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

crates/bench/src/bin/sweep_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
