/root/repo/target/debug/deps/sweep_utilization-c2c54f01c1c880c9.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-c2c54f01c1c880c9: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
