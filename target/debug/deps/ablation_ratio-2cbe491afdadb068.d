/root/repo/target/debug/deps/ablation_ratio-2cbe491afdadb068.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-2cbe491afdadb068: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
