/root/repo/target/debug/deps/lpfps_edf-2c3828d996c8c7a9.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/liblpfps_edf-2c3828d996c8c7a9.rlib: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/debug/deps/liblpfps_edf-2c3828d996c8c7a9.rmeta: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
