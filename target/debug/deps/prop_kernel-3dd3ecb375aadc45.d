/root/repo/target/debug/deps/prop_kernel-3dd3ecb375aadc45.d: crates/kernel/tests/prop_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libprop_kernel-3dd3ecb375aadc45.rmeta: crates/kernel/tests/prop_kernel.rs Cargo.toml

crates/kernel/tests/prop_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
