/root/repo/target/debug/deps/fig7_ratio-cd7af031c57c9b2d.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-cd7af031c57c9b2d: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
