/root/repo/target/debug/deps/ablation_tick-113311626e45ac55.d: crates/bench/src/bin/ablation_tick.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tick-113311626e45ac55.rmeta: crates/bench/src/bin/ablation_tick.rs Cargo.toml

crates/bench/src/bin/ablation_tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
