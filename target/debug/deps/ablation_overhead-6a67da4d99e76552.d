/root/repo/target/debug/deps/ablation_overhead-6a67da4d99e76552.d: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libablation_overhead-6a67da4d99e76552.rmeta: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

crates/bench/src/bin/ablation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
