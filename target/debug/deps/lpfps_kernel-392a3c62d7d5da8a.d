/root/repo/target/debug/deps/lpfps_kernel-392a3c62d7d5da8a.d: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/liblpfps_kernel-392a3c62d7d5da8a.rlib: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/liblpfps_kernel-392a3c62d7d5da8a.rmeta: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/engine.rs:
crates/kernel/src/gantt.rs:
crates/kernel/src/policy.rs:
crates/kernel/src/queues.rs:
crates/kernel/src/report.rs:
crates/kernel/src/stats.rs:
crates/kernel/src/trace.rs:
