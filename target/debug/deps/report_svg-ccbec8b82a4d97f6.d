/root/repo/target/debug/deps/report_svg-ccbec8b82a4d97f6.d: crates/bench/src/bin/report_svg.rs Cargo.toml

/root/repo/target/debug/deps/libreport_svg-ccbec8b82a4d97f6.rmeta: crates/bench/src/bin/report_svg.rs Cargo.toml

crates/bench/src/bin/report_svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
