/root/repo/target/debug/deps/fig2_schedule-26207b69a47aaa9d.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-26207b69a47aaa9d: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
