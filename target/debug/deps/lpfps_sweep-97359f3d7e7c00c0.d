/root/repo/target/debug/deps/lpfps_sweep-97359f3d7e7c00c0.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_sweep-97359f3d7e7c00c0.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs Cargo.toml

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
