/root/repo/target/debug/deps/determinism_prop-e1982a90f4cc50e5.d: crates/sweep/tests/determinism_prop.rs

/root/repo/target/debug/deps/determinism_prop-e1982a90f4cc50e5: crates/sweep/tests/determinism_prop.rs

crates/sweep/tests/determinism_prop.rs:
