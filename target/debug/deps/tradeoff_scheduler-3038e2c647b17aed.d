/root/repo/target/debug/deps/tradeoff_scheduler-3038e2c647b17aed.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-3038e2c647b17aed: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
