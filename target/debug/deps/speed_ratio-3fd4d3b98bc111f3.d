/root/repo/target/debug/deps/speed_ratio-3fd4d3b98bc111f3.d: crates/bench/benches/speed_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_ratio-3fd4d3b98bc111f3.rmeta: crates/bench/benches/speed_ratio.rs Cargo.toml

crates/bench/benches/speed_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
