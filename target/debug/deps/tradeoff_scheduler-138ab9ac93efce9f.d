/root/repo/target/debug/deps/tradeoff_scheduler-138ab9ac93efce9f.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-138ab9ac93efce9f: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
