/root/repo/target/debug/deps/ablation_overhead-a7573afbbe03426a.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-a7573afbbe03426a: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
