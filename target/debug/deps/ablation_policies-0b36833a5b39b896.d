/root/repo/target/debug/deps/ablation_policies-0b36833a5b39b896.d: crates/bench/src/bin/ablation_policies.rs Cargo.toml

/root/repo/target/debug/deps/libablation_policies-0b36833a5b39b896.rmeta: crates/bench/src/bin/ablation_policies.rs Cargo.toml

crates/bench/src/bin/ablation_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
