/root/repo/target/debug/deps/simulate-58f4215b9d516f0f.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-58f4215b9d516f0f: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
