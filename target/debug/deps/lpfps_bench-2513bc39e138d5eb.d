/root/repo/target/debug/deps/lpfps_bench-2513bc39e138d5eb.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-2513bc39e138d5eb.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-2513bc39e138d5eb.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
