/root/repo/target/debug/deps/chaos_policy-dae9e79ff978c142.d: crates/kernel/tests/chaos_policy.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_policy-dae9e79ff978c142.rmeta: crates/kernel/tests/chaos_policy.rs Cargo.toml

crates/kernel/tests/chaos_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
