/root/repo/target/debug/deps/fig1_bcet_ratio-5148c0d2003574bd.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-5148c0d2003574bd: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
