/root/repo/target/debug/deps/ablation_sleep_modes-0935d826f573579b.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-0935d826f573579b: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
