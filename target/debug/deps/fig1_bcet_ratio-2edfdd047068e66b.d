/root/repo/target/debug/deps/fig1_bcet_ratio-2edfdd047068e66b.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-2edfdd047068e66b: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
