/root/repo/target/debug/deps/fig1_bcet_ratio-66d307fa7a5d7791.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-66d307fa7a5d7791: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
