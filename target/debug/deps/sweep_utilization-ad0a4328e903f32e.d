/root/repo/target/debug/deps/sweep_utilization-ad0a4328e903f32e.d: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_utilization-ad0a4328e903f32e.rmeta: crates/bench/src/bin/sweep_utilization.rs Cargo.toml

crates/bench/src/bin/sweep_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
