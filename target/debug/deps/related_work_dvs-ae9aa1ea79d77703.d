/root/repo/target/debug/deps/related_work_dvs-ae9aa1ea79d77703.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-ae9aa1ea79d77703: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
