/root/repo/target/debug/deps/fault_sweep-baa2dd53a2961153.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-baa2dd53a2961153: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
