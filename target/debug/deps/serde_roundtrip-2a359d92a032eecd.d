/root/repo/target/debug/deps/serde_roundtrip-2a359d92a032eecd.d: crates/tasks/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-2a359d92a032eecd: crates/tasks/tests/serde_roundtrip.rs

crates/tasks/tests/serde_roundtrip.rs:
