/root/repo/target/debug/deps/theorem1-423fc414bca23917.d: crates/core/tests/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-423fc414bca23917.rmeta: crates/core/tests/theorem1.rs Cargo.toml

crates/core/tests/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
