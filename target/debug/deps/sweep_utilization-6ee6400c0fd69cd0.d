/root/repo/target/debug/deps/sweep_utilization-6ee6400c0fd69cd0.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-6ee6400c0fd69cd0: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
