/root/repo/target/debug/deps/determinism_prop-ec688fd668fde3df.d: crates/sweep/tests/determinism_prop.rs

/root/repo/target/debug/deps/determinism_prop-ec688fd668fde3df: crates/sweep/tests/determinism_prop.rs

crates/sweep/tests/determinism_prop.rs:
