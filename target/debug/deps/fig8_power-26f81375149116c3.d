/root/repo/target/debug/deps/fig8_power-26f81375149116c3.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-26f81375149116c3: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
