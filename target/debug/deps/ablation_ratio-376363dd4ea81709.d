/root/repo/target/debug/deps/ablation_ratio-376363dd4ea81709.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-376363dd4ea81709: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
