/root/repo/target/debug/deps/fig7_ratio-f475a6f2b091af01.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-f475a6f2b091af01: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
