/root/repo/target/debug/deps/lpfps_bench-0051a418f1e78858.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-0051a418f1e78858.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-0051a418f1e78858.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
