/root/repo/target/debug/deps/serde-218f26ce4b613cf5.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-218f26ce4b613cf5.rlib: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-218f26ce4b613cf5.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
