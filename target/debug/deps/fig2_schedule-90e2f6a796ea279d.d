/root/repo/target/debug/deps/fig2_schedule-90e2f6a796ea279d.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-90e2f6a796ea279d: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
