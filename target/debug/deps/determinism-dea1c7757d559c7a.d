/root/repo/target/debug/deps/determinism-dea1c7757d559c7a.d: crates/sweep/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-dea1c7757d559c7a.rmeta: crates/sweep/tests/determinism.rs Cargo.toml

crates/sweep/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
