/root/repo/target/debug/deps/ablation_shutdown-659ffe175c9629a1.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-659ffe175c9629a1: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
