/root/repo/target/debug/deps/ablation_shutdown-d817e943475c214c.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-d817e943475c214c: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
