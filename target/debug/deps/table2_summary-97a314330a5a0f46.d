/root/repo/target/debug/deps/table2_summary-97a314330a5a0f46.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-97a314330a5a0f46: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
