/root/repo/target/debug/deps/simulate-a738b2205e20cceb.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-a738b2205e20cceb: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
