/root/repo/target/debug/deps/fig8_power-c58006ff5b81a6d5.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-c58006ff5b81a6d5: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
