/root/repo/target/debug/deps/sweep_utilization-0e615df049985c1d.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-0e615df049985c1d: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
