/root/repo/target/debug/deps/ablation_ladder-df9a74156db83e63.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-df9a74156db83e63: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
