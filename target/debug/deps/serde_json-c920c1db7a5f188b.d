/root/repo/target/debug/deps/serde_json-c920c1db7a5f188b.d: third_party/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-c920c1db7a5f188b.rmeta: third_party/serde_json/src/lib.rs Cargo.toml

third_party/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
