/root/repo/target/debug/deps/ablation_sleep_modes-47808755c875672d.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-47808755c875672d: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
