/root/repo/target/debug/deps/ablation_policies-b43fd991a87d2ba7.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-b43fd991a87d2ba7: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
