/root/repo/target/debug/deps/safety_matrix-5b2b5fa45cb27b21.d: crates/core/tests/safety_matrix.rs

/root/repo/target/debug/deps/safety_matrix-5b2b5fa45cb27b21: crates/core/tests/safety_matrix.rs

crates/core/tests/safety_matrix.rs:
