/root/repo/target/debug/deps/fig7_ratio-d5feac0a959eed9a.d: crates/bench/src/bin/fig7_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_ratio-d5feac0a959eed9a.rmeta: crates/bench/src/bin/fig7_ratio.rs Cargo.toml

crates/bench/src/bin/fig7_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
