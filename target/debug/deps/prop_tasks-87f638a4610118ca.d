/root/repo/target/debug/deps/prop_tasks-87f638a4610118ca.d: crates/tasks/tests/prop_tasks.rs Cargo.toml

/root/repo/target/debug/deps/libprop_tasks-87f638a4610118ca.rmeta: crates/tasks/tests/prop_tasks.rs Cargo.toml

crates/tasks/tests/prop_tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
