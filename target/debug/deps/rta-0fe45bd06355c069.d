/root/repo/target/debug/deps/rta-0fe45bd06355c069.d: crates/bench/benches/rta.rs Cargo.toml

/root/repo/target/debug/deps/librta-0fe45bd06355c069.rmeta: crates/bench/benches/rta.rs Cargo.toml

crates/bench/benches/rta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
