/root/repo/target/debug/deps/fig1_bcet_ratio-07470200075b9906.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-07470200075b9906: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
