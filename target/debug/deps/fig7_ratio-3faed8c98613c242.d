/root/repo/target/debug/deps/fig7_ratio-3faed8c98613c242.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-3faed8c98613c242: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
