/root/repo/target/debug/deps/edf_algos-a3ced2aed14bb812.d: crates/bench/benches/edf_algos.rs Cargo.toml

/root/repo/target/debug/deps/libedf_algos-a3ced2aed14bb812.rmeta: crates/bench/benches/edf_algos.rs Cargo.toml

crates/bench/benches/edf_algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
