/root/repo/target/debug/deps/report_svg-4abbcf07cb53c80c.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-4abbcf07cb53c80c: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
