/root/repo/target/debug/deps/lpfps_bench-488cc0f1e133cbfa.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-488cc0f1e133cbfa.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-488cc0f1e133cbfa.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
