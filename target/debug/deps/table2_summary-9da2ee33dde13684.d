/root/repo/target/debug/deps/table2_summary-9da2ee33dde13684.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-9da2ee33dde13684: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
