/root/repo/target/debug/deps/table2_summary-5fd6044f0d53f41d.d: crates/bench/src/bin/table2_summary.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_summary-5fd6044f0d53f41d.rmeta: crates/bench/src/bin/table2_summary.rs Cargo.toml

crates/bench/src/bin/table2_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
