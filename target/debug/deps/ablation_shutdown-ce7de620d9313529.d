/root/repo/target/debug/deps/ablation_shutdown-ce7de620d9313529.d: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shutdown-ce7de620d9313529.rmeta: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

crates/bench/src/bin/ablation_shutdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
