/root/repo/target/debug/deps/serde_json-1935cceea6721c79.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-1935cceea6721c79.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-1935cceea6721c79.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
