/root/repo/target/debug/deps/related_work_dvs-830e94be77698dae.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-830e94be77698dae: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
