/root/repo/target/debug/deps/ablation_tick-2bb794f29a9ae60c.d: crates/bench/src/bin/ablation_tick.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tick-2bb794f29a9ae60c.rmeta: crates/bench/src/bin/ablation_tick.rs Cargo.toml

crates/bench/src/bin/ablation_tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
