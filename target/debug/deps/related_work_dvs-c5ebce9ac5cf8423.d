/root/repo/target/debug/deps/related_work_dvs-c5ebce9ac5cf8423.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-c5ebce9ac5cf8423: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
