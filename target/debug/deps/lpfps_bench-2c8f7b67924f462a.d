/root/repo/target/debug/deps/lpfps_bench-2c8f7b67924f462a.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-2c8f7b67924f462a.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
