/root/repo/target/debug/deps/lpfps_kernel-9b3773ce79637898.d: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/debug/deps/liblpfps_kernel-9b3773ce79637898.rmeta: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/engine.rs:
crates/kernel/src/gantt.rs:
crates/kernel/src/policy.rs:
crates/kernel/src/queues.rs:
crates/kernel/src/report.rs:
crates/kernel/src/stats.rs:
crates/kernel/src/trace.rs:
