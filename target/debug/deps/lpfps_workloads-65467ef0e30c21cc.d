/root/repo/target/debug/deps/lpfps_workloads-65467ef0e30c21cc.d: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/debug/deps/lpfps_workloads-65467ef0e30c21cc: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avionics.rs:
crates/workloads/src/bcet_figure1.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/cnc.rs:
crates/workloads/src/flight.rs:
crates/workloads/src/ins.rs:
crates/workloads/src/table1.rs:
