/root/repo/target/debug/deps/lpfps_bench-b72ffc13682fd46e.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-b72ffc13682fd46e.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-b72ffc13682fd46e.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
