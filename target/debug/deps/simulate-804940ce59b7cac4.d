/root/repo/target/debug/deps/simulate-804940ce59b7cac4.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-804940ce59b7cac4: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
