/root/repo/target/debug/deps/speed_ratio-3c77dc8d771c9df7.d: crates/bench/benches/speed_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_ratio-3c77dc8d771c9df7.rmeta: crates/bench/benches/speed_ratio.rs Cargo.toml

crates/bench/benches/speed_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
