/root/repo/target/debug/deps/ablation_shutdown-6cbd3acec2778f94.d: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shutdown-6cbd3acec2778f94.rmeta: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

crates/bench/src/bin/ablation_shutdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
