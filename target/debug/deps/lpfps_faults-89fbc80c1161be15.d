/root/repo/target/debug/deps/lpfps_faults-89fbc80c1161be15.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/lpfps_faults-89fbc80c1161be15: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
