/root/repo/target/debug/deps/ablation_policies-843297473f3071df.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-843297473f3071df: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
