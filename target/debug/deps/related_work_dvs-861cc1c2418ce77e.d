/root/repo/target/debug/deps/related_work_dvs-861cc1c2418ce77e.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-861cc1c2418ce77e: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
