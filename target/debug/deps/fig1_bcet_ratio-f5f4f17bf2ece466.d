/root/repo/target/debug/deps/fig1_bcet_ratio-f5f4f17bf2ece466.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/debug/deps/fig1_bcet_ratio-f5f4f17bf2ece466: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
