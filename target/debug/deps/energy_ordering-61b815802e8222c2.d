/root/repo/target/debug/deps/energy_ordering-61b815802e8222c2.d: crates/core/tests/energy_ordering.rs

/root/repo/target/debug/deps/energy_ordering-61b815802e8222c2: crates/core/tests/energy_ordering.rs

crates/core/tests/energy_ordering.rs:
