/root/repo/target/debug/deps/ablation_tick-37836907558025da.d: crates/bench/src/bin/ablation_tick.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tick-37836907558025da.rmeta: crates/bench/src/bin/ablation_tick.rs Cargo.toml

crates/bench/src/bin/ablation_tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
