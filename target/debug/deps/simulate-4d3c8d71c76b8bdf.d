/root/repo/target/debug/deps/simulate-4d3c8d71c76b8bdf.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-4d3c8d71c76b8bdf: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
