/root/repo/target/debug/deps/power_sim-d443f76fd9a5139f.d: crates/bench/benches/power_sim.rs Cargo.toml

/root/repo/target/debug/deps/libpower_sim-d443f76fd9a5139f.rmeta: crates/bench/benches/power_sim.rs Cargo.toml

crates/bench/benches/power_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
