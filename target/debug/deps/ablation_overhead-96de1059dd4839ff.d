/root/repo/target/debug/deps/ablation_overhead-96de1059dd4839ff.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-96de1059dd4839ff: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
