/root/repo/target/debug/deps/report_svg-f3cfa73ff171015f.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-f3cfa73ff171015f: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
