/root/repo/target/debug/deps/ablation_overhead-a0e27d231b669369.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-a0e27d231b669369: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
