/root/repo/target/debug/deps/report_svg-f15e9d55630e1882.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-f15e9d55630e1882: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
