/root/repo/target/debug/deps/ablation_ladder-af21fa3a7db10abd.d: crates/bench/src/bin/ablation_ladder.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ladder-af21fa3a7db10abd.rmeta: crates/bench/src/bin/ablation_ladder.rs Cargo.toml

crates/bench/src/bin/ablation_ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
