/root/repo/target/debug/deps/ablation_shutdown-4cd7dff10aa170b0.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-4cd7dff10aa170b0: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
