/root/repo/target/debug/deps/prop_kernel-3979da5d421276cd.d: crates/kernel/tests/prop_kernel.rs

/root/repo/target/debug/deps/prop_kernel-3979da5d421276cd: crates/kernel/tests/prop_kernel.rs

crates/kernel/tests/prop_kernel.rs:
