/root/repo/target/debug/deps/fig1_bcet_ratio-b9cdcded3990d176.d: crates/bench/src/bin/fig1_bcet_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_bcet_ratio-b9cdcded3990d176.rmeta: crates/bench/src/bin/fig1_bcet_ratio.rs Cargo.toml

crates/bench/src/bin/fig1_bcet_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
