/root/repo/target/debug/deps/power_sim-6e1a5f2877bbc7d5.d: crates/bench/benches/power_sim.rs Cargo.toml

/root/repo/target/debug/deps/libpower_sim-6e1a5f2877bbc7d5.rmeta: crates/bench/benches/power_sim.rs Cargo.toml

crates/bench/benches/power_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
