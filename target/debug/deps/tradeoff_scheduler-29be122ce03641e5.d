/root/repo/target/debug/deps/tradeoff_scheduler-29be122ce03641e5.d: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libtradeoff_scheduler-29be122ce03641e5.rmeta: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

crates/bench/src/bin/tradeoff_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
