/root/repo/target/debug/deps/lpfps_bench-efb3688ab4ef321c.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-efb3688ab4ef321c.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-efb3688ab4ef321c.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
