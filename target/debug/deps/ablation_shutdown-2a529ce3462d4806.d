/root/repo/target/debug/deps/ablation_shutdown-2a529ce3462d4806.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-2a529ce3462d4806: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
