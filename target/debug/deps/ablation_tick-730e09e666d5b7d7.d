/root/repo/target/debug/deps/ablation_tick-730e09e666d5b7d7.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-730e09e666d5b7d7: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
