/root/repo/target/debug/deps/lpfps-85bea09b224b89ed.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-85bea09b224b89ed.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-85bea09b224b89ed.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
