/root/repo/target/debug/deps/ablation_policies-07922baf41fc0149.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-07922baf41fc0149: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
