/root/repo/target/debug/deps/prop_kernel-12c7f2094444447c.d: crates/kernel/tests/prop_kernel.rs

/root/repo/target/debug/deps/prop_kernel-12c7f2094444447c: crates/kernel/tests/prop_kernel.rs

crates/kernel/tests/prop_kernel.rs:
