/root/repo/target/debug/deps/sweep_utilization-fb234275c5dbbceb.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-fb234275c5dbbceb: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
