/root/repo/target/debug/deps/theorem1-1af5ef6c67c60492.d: crates/core/tests/theorem1.rs

/root/repo/target/debug/deps/theorem1-1af5ef6c67c60492: crates/core/tests/theorem1.rs

crates/core/tests/theorem1.rs:
