/root/repo/target/debug/deps/serde_json-beb6d3a7f66ee4c6.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-beb6d3a7f66ee4c6.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-beb6d3a7f66ee4c6.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
