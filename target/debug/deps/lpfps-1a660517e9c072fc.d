/root/repo/target/debug/deps/lpfps-1a660517e9c072fc.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/lpfps-1a660517e9c072fc: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
