/root/repo/target/debug/deps/ablation_shutdown-4c778105fce67ee1.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-4c778105fce67ee1: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
