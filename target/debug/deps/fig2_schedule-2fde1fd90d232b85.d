/root/repo/target/debug/deps/fig2_schedule-2fde1fd90d232b85.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-2fde1fd90d232b85: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
