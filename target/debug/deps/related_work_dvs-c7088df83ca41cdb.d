/root/repo/target/debug/deps/related_work_dvs-c7088df83ca41cdb.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-c7088df83ca41cdb: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
