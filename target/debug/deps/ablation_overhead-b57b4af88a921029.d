/root/repo/target/debug/deps/ablation_overhead-b57b4af88a921029.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-b57b4af88a921029: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
