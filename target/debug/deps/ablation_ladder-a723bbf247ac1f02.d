/root/repo/target/debug/deps/ablation_ladder-a723bbf247ac1f02.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-a723bbf247ac1f02: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
