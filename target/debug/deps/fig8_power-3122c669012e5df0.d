/root/repo/target/debug/deps/fig8_power-3122c669012e5df0.d: crates/bench/src/bin/fig8_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power-3122c669012e5df0.rmeta: crates/bench/src/bin/fig8_power.rs Cargo.toml

crates/bench/src/bin/fig8_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
