/root/repo/target/debug/deps/simulate-e451fe2e82b9f968.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-e451fe2e82b9f968.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
