/root/repo/target/debug/deps/tradeoff_scheduler-9dac57bba1de4179.d: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libtradeoff_scheduler-9dac57bba1de4179.rmeta: crates/bench/src/bin/tradeoff_scheduler.rs Cargo.toml

crates/bench/src/bin/tradeoff_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
