/root/repo/target/debug/deps/sweep_utilization-a623d23f0a577c45.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-a623d23f0a577c45: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
