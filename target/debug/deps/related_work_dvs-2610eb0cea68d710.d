/root/repo/target/debug/deps/related_work_dvs-2610eb0cea68d710.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-2610eb0cea68d710: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
