/root/repo/target/debug/deps/serde-463204de1dd4683f.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-463204de1dd4683f.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
