/root/repo/target/debug/deps/tradeoff_scheduler-76b8a0c5ba4dfb5a.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-76b8a0c5ba4dfb5a: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
