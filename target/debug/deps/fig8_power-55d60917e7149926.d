/root/repo/target/debug/deps/fig8_power-55d60917e7149926.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-55d60917e7149926: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
