/root/repo/target/debug/deps/lpfps_sweep-fcc6223eba65a969.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-fcc6223eba65a969.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
