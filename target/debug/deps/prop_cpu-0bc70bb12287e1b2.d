/root/repo/target/debug/deps/prop_cpu-0bc70bb12287e1b2.d: crates/cpu/tests/prop_cpu.rs Cargo.toml

/root/repo/target/debug/deps/libprop_cpu-0bc70bb12287e1b2.rmeta: crates/cpu/tests/prop_cpu.rs Cargo.toml

crates/cpu/tests/prop_cpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
