/root/repo/target/debug/deps/sweep_utilization-b9d03486f180422d.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-b9d03486f180422d: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
