/root/repo/target/debug/deps/ablation_ratio-b7777bd7d7ac89c5.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-b7777bd7d7ac89c5: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
