/root/repo/target/debug/deps/edf_algos-5e5f0fa725a2ef5e.d: crates/bench/benches/edf_algos.rs Cargo.toml

/root/repo/target/debug/deps/libedf_algos-5e5f0fa725a2ef5e.rmeta: crates/bench/benches/edf_algos.rs Cargo.toml

crates/bench/benches/edf_algos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
