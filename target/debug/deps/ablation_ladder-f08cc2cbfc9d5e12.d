/root/repo/target/debug/deps/ablation_ladder-f08cc2cbfc9d5e12.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-f08cc2cbfc9d5e12: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
