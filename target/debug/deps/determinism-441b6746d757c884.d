/root/repo/target/debug/deps/determinism-441b6746d757c884.d: crates/sweep/tests/determinism.rs

/root/repo/target/debug/deps/determinism-441b6746d757c884: crates/sweep/tests/determinism.rs

crates/sweep/tests/determinism.rs:
