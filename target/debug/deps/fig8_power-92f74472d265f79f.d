/root/repo/target/debug/deps/fig8_power-92f74472d265f79f.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-92f74472d265f79f: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
