/root/repo/target/debug/deps/lpfps-44c4f1627ead5b9a.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps-44c4f1627ead5b9a.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
