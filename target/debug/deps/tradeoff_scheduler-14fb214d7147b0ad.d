/root/repo/target/debug/deps/tradeoff_scheduler-14fb214d7147b0ad.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-14fb214d7147b0ad: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
