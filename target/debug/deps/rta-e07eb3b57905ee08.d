/root/repo/target/debug/deps/rta-e07eb3b57905ee08.d: crates/bench/benches/rta.rs Cargo.toml

/root/repo/target/debug/deps/librta-e07eb3b57905ee08.rmeta: crates/bench/benches/rta.rs Cargo.toml

crates/bench/benches/rta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
