/root/repo/target/debug/deps/ablation_policies-5e4ea836d3b6941e.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-5e4ea836d3b6941e: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
