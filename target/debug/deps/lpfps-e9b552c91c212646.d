/root/repo/target/debug/deps/lpfps-e9b552c91c212646.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-e9b552c91c212646.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
