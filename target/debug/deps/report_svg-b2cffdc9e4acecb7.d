/root/repo/target/debug/deps/report_svg-b2cffdc9e4acecb7.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-b2cffdc9e4acecb7: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
