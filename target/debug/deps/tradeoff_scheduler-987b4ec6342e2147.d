/root/repo/target/debug/deps/tradeoff_scheduler-987b4ec6342e2147.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-987b4ec6342e2147: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
