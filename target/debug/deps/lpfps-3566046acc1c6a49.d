/root/repo/target/debug/deps/lpfps-3566046acc1c6a49.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-3566046acc1c6a49.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-3566046acc1c6a49.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
