/root/repo/target/debug/deps/ablation_ladder-161d397b8dc8a110.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-161d397b8dc8a110: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
