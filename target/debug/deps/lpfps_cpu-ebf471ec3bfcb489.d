/root/repo/target/debug/deps/lpfps_cpu-ebf471ec3bfcb489.d: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/debug/deps/lpfps_cpu-ebf471ec3bfcb489: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

crates/cpu/src/lib.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/ladder.rs:
crates/cpu/src/modes.rs:
crates/cpu/src/power.rs:
crates/cpu/src/ramp.rs:
crates/cpu/src/spec.rs:
crates/cpu/src/state.rs:
crates/cpu/src/vf.rs:
