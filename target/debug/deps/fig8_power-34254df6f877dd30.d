/root/repo/target/debug/deps/fig8_power-34254df6f877dd30.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/debug/deps/fig8_power-34254df6f877dd30: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
