/root/repo/target/debug/deps/kernel_throughput-54792bafdb31dcd4.d: crates/bench/benches/kernel_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_throughput-54792bafdb31dcd4.rmeta: crates/bench/benches/kernel_throughput.rs Cargo.toml

crates/bench/benches/kernel_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
