/root/repo/target/debug/deps/report_svg-b53434963f6fa74a.d: crates/bench/src/bin/report_svg.rs Cargo.toml

/root/repo/target/debug/deps/libreport_svg-b53434963f6fa74a.rmeta: crates/bench/src/bin/report_svg.rs Cargo.toml

crates/bench/src/bin/report_svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
