/root/repo/target/debug/deps/lpfps_bench-c35c5d662817d355.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-c35c5d662817d355.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
