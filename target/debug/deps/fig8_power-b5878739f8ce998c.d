/root/repo/target/debug/deps/fig8_power-b5878739f8ce998c.d: crates/bench/src/bin/fig8_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power-b5878739f8ce998c.rmeta: crates/bench/src/bin/fig8_power.rs Cargo.toml

crates/bench/src/bin/fig8_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
