/root/repo/target/debug/deps/related_work_dvs-cab81662ff245218.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/debug/deps/related_work_dvs-cab81662ff245218: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
