/root/repo/target/debug/deps/prop_edf-65b12c992afbe598.d: crates/edf/tests/prop_edf.rs

/root/repo/target/debug/deps/prop_edf-65b12c992afbe598: crates/edf/tests/prop_edf.rs

crates/edf/tests/prop_edf.rs:
