/root/repo/target/debug/deps/ablation_tick-abd682bee5a6b69e.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-abd682bee5a6b69e: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
