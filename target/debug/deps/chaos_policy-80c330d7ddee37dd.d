/root/repo/target/debug/deps/chaos_policy-80c330d7ddee37dd.d: crates/kernel/tests/chaos_policy.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_policy-80c330d7ddee37dd.rmeta: crates/kernel/tests/chaos_policy.rs Cargo.toml

crates/kernel/tests/chaos_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
