/root/repo/target/debug/deps/tradeoff_scheduler-1a6e2619c8c25a3e.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/debug/deps/tradeoff_scheduler-1a6e2619c8c25a3e: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
