/root/repo/target/debug/deps/lpfps_bench-78dd76417285e6d1.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/lpfps_bench-78dd76417285e6d1: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
