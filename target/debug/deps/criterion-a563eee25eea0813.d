/root/repo/target/debug/deps/criterion-a563eee25eea0813.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a563eee25eea0813: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
