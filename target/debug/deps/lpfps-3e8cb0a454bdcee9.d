/root/repo/target/debug/deps/lpfps-3e8cb0a454bdcee9.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/lpfps-3e8cb0a454bdcee9: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
