/root/repo/target/debug/deps/ablation_sleep_modes-4e9b76fbe86f257d.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/debug/deps/ablation_sleep_modes-4e9b76fbe86f257d: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
