/root/repo/target/debug/deps/report_svg-f3cbdaec28a265da.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-f3cbdaec28a265da: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
