/root/repo/target/debug/deps/ablation_ratio-8aafe53357e4e616.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/debug/deps/ablation_ratio-8aafe53357e4e616: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
