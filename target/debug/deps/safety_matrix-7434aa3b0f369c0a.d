/root/repo/target/debug/deps/safety_matrix-7434aa3b0f369c0a.d: crates/core/tests/safety_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libsafety_matrix-7434aa3b0f369c0a.rmeta: crates/core/tests/safety_matrix.rs Cargo.toml

crates/core/tests/safety_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
