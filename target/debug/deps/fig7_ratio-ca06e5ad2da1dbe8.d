/root/repo/target/debug/deps/fig7_ratio-ca06e5ad2da1dbe8.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/debug/deps/fig7_ratio-ca06e5ad2da1dbe8: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
