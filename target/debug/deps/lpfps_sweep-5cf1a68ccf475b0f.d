/root/repo/target/debug/deps/lpfps_sweep-5cf1a68ccf475b0f.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-5cf1a68ccf475b0f.rlib: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-5cf1a68ccf475b0f.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
