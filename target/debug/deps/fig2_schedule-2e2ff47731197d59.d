/root/repo/target/debug/deps/fig2_schedule-2e2ff47731197d59.d: crates/bench/src/bin/fig2_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_schedule-2e2ff47731197d59.rmeta: crates/bench/src/bin/fig2_schedule.rs Cargo.toml

crates/bench/src/bin/fig2_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
