/root/repo/target/debug/deps/lpfps_cpu-eed444862e7a380c.d: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/debug/deps/liblpfps_cpu-eed444862e7a380c.rlib: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/debug/deps/liblpfps_cpu-eed444862e7a380c.rmeta: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

crates/cpu/src/lib.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/ladder.rs:
crates/cpu/src/modes.rs:
crates/cpu/src/power.rs:
crates/cpu/src/ramp.rs:
crates/cpu/src/spec.rs:
crates/cpu/src/state.rs:
crates/cpu/src/vf.rs:
