/root/repo/target/debug/deps/lpfps_sweep-5a6a8c2282a26850.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_sweep-5a6a8c2282a26850.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs Cargo.toml

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
