/root/repo/target/debug/deps/analysis_vs_sim-6cf109e3e75712fc.d: crates/core/tests/analysis_vs_sim.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_vs_sim-6cf109e3e75712fc.rmeta: crates/core/tests/analysis_vs_sim.rs Cargo.toml

crates/core/tests/analysis_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
