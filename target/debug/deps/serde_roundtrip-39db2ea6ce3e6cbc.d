/root/repo/target/debug/deps/serde_roundtrip-39db2ea6ce3e6cbc.d: crates/tasks/tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-39db2ea6ce3e6cbc.rmeta: crates/tasks/tests/serde_roundtrip.rs Cargo.toml

crates/tasks/tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
