/root/repo/target/debug/deps/fig8_power-acf31a0c44c17023.d: crates/bench/src/bin/fig8_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power-acf31a0c44c17023.rmeta: crates/bench/src/bin/fig8_power.rs Cargo.toml

crates/bench/src/bin/fig8_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
