/root/repo/target/debug/deps/serde-b355952b039d1234.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-b355952b039d1234.rlib: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/libserde-b355952b039d1234.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
