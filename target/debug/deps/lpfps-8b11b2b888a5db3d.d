/root/repo/target/debug/deps/lpfps-8b11b2b888a5db3d.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-8b11b2b888a5db3d.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/debug/deps/liblpfps-8b11b2b888a5db3d.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
