/root/repo/target/debug/deps/serde-2e37bd84a3e1dce3.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/debug/deps/serde-2e37bd84a3e1dce3: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
