/root/repo/target/debug/deps/determinism-75d1c7cc77433812.d: crates/sweep/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-75d1c7cc77433812.rmeta: crates/sweep/tests/determinism.rs Cargo.toml

crates/sweep/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
