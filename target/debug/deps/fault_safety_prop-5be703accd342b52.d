/root/repo/target/debug/deps/fault_safety_prop-5be703accd342b52.d: crates/core/tests/fault_safety_prop.rs Cargo.toml

/root/repo/target/debug/deps/libfault_safety_prop-5be703accd342b52.rmeta: crates/core/tests/fault_safety_prop.rs Cargo.toml

crates/core/tests/fault_safety_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
