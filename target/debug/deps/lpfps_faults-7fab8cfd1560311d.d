/root/repo/target/debug/deps/lpfps_faults-7fab8cfd1560311d.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/liblpfps_faults-7fab8cfd1560311d.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
