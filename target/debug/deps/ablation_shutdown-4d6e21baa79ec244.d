/root/repo/target/debug/deps/ablation_shutdown-4d6e21baa79ec244.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-4d6e21baa79ec244: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
