/root/repo/target/debug/deps/fig2_schedule-c724815f894818c2.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/debug/deps/fig2_schedule-c724815f894818c2: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
