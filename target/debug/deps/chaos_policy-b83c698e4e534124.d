/root/repo/target/debug/deps/chaos_policy-b83c698e4e534124.d: crates/kernel/tests/chaos_policy.rs

/root/repo/target/debug/deps/chaos_policy-b83c698e4e534124: crates/kernel/tests/chaos_policy.rs

crates/kernel/tests/chaos_policy.rs:
