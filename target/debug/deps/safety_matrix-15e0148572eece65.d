/root/repo/target/debug/deps/safety_matrix-15e0148572eece65.d: crates/core/tests/safety_matrix.rs

/root/repo/target/debug/deps/safety_matrix-15e0148572eece65: crates/core/tests/safety_matrix.rs

crates/core/tests/safety_matrix.rs:
