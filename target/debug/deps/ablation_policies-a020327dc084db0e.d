/root/repo/target/debug/deps/ablation_policies-a020327dc084db0e.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/debug/deps/ablation_policies-a020327dc084db0e: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
