/root/repo/target/debug/deps/ablation_tick-ba95f6bb5f0815db.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-ba95f6bb5f0815db: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
