/root/repo/target/debug/deps/report_svg-d39ef5d270c81b8b.d: crates/bench/src/bin/report_svg.rs Cargo.toml

/root/repo/target/debug/deps/libreport_svg-d39ef5d270c81b8b.rmeta: crates/bench/src/bin/report_svg.rs Cargo.toml

crates/bench/src/bin/report_svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
