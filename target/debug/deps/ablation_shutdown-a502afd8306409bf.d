/root/repo/target/debug/deps/ablation_shutdown-a502afd8306409bf.d: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shutdown-a502afd8306409bf.rmeta: crates/bench/src/bin/ablation_shutdown.rs Cargo.toml

crates/bench/src/bin/ablation_shutdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
