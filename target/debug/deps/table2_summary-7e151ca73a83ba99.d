/root/repo/target/debug/deps/table2_summary-7e151ca73a83ba99.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-7e151ca73a83ba99: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
