/root/repo/target/debug/deps/lpfps_faults-d18516ebff6d90ff.d: crates/faults/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblpfps_faults-d18516ebff6d90ff.rmeta: crates/faults/src/lib.rs Cargo.toml

crates/faults/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
