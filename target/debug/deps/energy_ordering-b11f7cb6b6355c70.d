/root/repo/target/debug/deps/energy_ordering-b11f7cb6b6355c70.d: crates/core/tests/energy_ordering.rs

/root/repo/target/debug/deps/energy_ordering-b11f7cb6b6355c70: crates/core/tests/energy_ordering.rs

crates/core/tests/energy_ordering.rs:
