/root/repo/target/debug/deps/ablation_shutdown-e240cadfe800667c.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/debug/deps/ablation_shutdown-e240cadfe800667c: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
