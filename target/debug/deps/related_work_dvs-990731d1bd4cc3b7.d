/root/repo/target/debug/deps/related_work_dvs-990731d1bd4cc3b7.d: crates/bench/src/bin/related_work_dvs.rs Cargo.toml

/root/repo/target/debug/deps/librelated_work_dvs-990731d1bd4cc3b7.rmeta: crates/bench/src/bin/related_work_dvs.rs Cargo.toml

crates/bench/src/bin/related_work_dvs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
