/root/repo/target/debug/deps/lpfps_sweep-904b5c2bad8a9427.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/debug/deps/liblpfps_sweep-904b5c2bad8a9427.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
