/root/repo/target/debug/deps/sweep_utilization-dee5a27804d8f179.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/debug/deps/sweep_utilization-dee5a27804d8f179: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
