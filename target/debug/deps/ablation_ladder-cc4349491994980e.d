/root/repo/target/debug/deps/ablation_ladder-cc4349491994980e.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/debug/deps/ablation_ladder-cc4349491994980e: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
