/root/repo/target/debug/deps/fig8_power-b62dffe800f1bf1c.d: crates/bench/src/bin/fig8_power.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_power-b62dffe800f1bf1c.rmeta: crates/bench/src/bin/fig8_power.rs Cargo.toml

crates/bench/src/bin/fig8_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
