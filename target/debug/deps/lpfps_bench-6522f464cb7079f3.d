/root/repo/target/debug/deps/lpfps_bench-6522f464cb7079f3.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/lpfps_bench-6522f464cb7079f3: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
