/root/repo/target/debug/deps/analysis_vs_sim-6f06ad3efcfaee46.d: crates/core/tests/analysis_vs_sim.rs

/root/repo/target/debug/deps/analysis_vs_sim-6f06ad3efcfaee46: crates/core/tests/analysis_vs_sim.rs

crates/core/tests/analysis_vs_sim.rs:
