/root/repo/target/debug/deps/lpfps_bench-8608fee01118e8ab.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-8608fee01118e8ab.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/debug/deps/liblpfps_bench-8608fee01118e8ab.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
