/root/repo/target/debug/deps/ablation_overhead-a142f69841d63d09.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-a142f69841d63d09: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
