/root/repo/target/debug/deps/table2_summary-afd7ba69a1fe45f9.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/debug/deps/table2_summary-afd7ba69a1fe45f9: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
