/root/repo/target/debug/deps/determinism-0c6b276102d2f262.d: crates/sweep/tests/determinism.rs

/root/repo/target/debug/deps/determinism-0c6b276102d2f262: crates/sweep/tests/determinism.rs

crates/sweep/tests/determinism.rs:
