/root/repo/target/debug/deps/serde-9f9fed35077a47dd.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libserde-9f9fed35077a47dd.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs Cargo.toml

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
