/root/repo/target/debug/deps/ablation_tick-c402c20170c41347.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/debug/deps/ablation_tick-c402c20170c41347: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
