/root/repo/target/debug/deps/theorem1-3366b347d26744c8.d: crates/core/tests/theorem1.rs

/root/repo/target/debug/deps/theorem1-3366b347d26744c8: crates/core/tests/theorem1.rs

crates/core/tests/theorem1.rs:
