/root/repo/target/debug/deps/chaos_policy-ff8b816344871599.d: crates/kernel/tests/chaos_policy.rs

/root/repo/target/debug/deps/chaos_policy-ff8b816344871599: crates/kernel/tests/chaos_policy.rs

crates/kernel/tests/chaos_policy.rs:
