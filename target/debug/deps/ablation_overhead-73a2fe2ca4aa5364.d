/root/repo/target/debug/deps/ablation_overhead-73a2fe2ca4aa5364.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-73a2fe2ca4aa5364: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
