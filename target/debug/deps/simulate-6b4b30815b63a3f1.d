/root/repo/target/debug/deps/simulate-6b4b30815b63a3f1.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-6b4b30815b63a3f1: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
