/root/repo/target/debug/deps/table2_summary-a841ac8da4a0464e.d: crates/bench/src/bin/table2_summary.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_summary-a841ac8da4a0464e.rmeta: crates/bench/src/bin/table2_summary.rs Cargo.toml

crates/bench/src/bin/table2_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
