/root/repo/target/debug/deps/ablation_overhead-5495721dc98283ae.d: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libablation_overhead-5495721dc98283ae.rmeta: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

crates/bench/src/bin/ablation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
