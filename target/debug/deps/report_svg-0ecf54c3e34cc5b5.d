/root/repo/target/debug/deps/report_svg-0ecf54c3e34cc5b5.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/debug/deps/report_svg-0ecf54c3e34cc5b5: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
