/root/repo/target/debug/deps/lpfps_tasks-3f3b7a0a08ac6fdc.d: crates/tasks/src/lib.rs crates/tasks/src/analysis/mod.rs crates/tasks/src/analysis/breakdown.rs crates/tasks/src/analysis/busy_period.rs crates/tasks/src/analysis/hyperperiod.rs crates/tasks/src/analysis/opa.rs crates/tasks/src/analysis/response_time.rs crates/tasks/src/analysis/sensitivity.rs crates/tasks/src/analysis/utilization.rs crates/tasks/src/cycles.rs crates/tasks/src/exec/mod.rs crates/tasks/src/exec/bimodal.rs crates/tasks/src/exec/constant.rs crates/tasks/src/exec/cyclic.rs crates/tasks/src/exec/gaussian.rs crates/tasks/src/exec/uniform.rs crates/tasks/src/freq.rs crates/tasks/src/gen.rs crates/tasks/src/priority.rs crates/tasks/src/rng.rs crates/tasks/src/task.rs crates/tasks/src/taskset.rs crates/tasks/src/time.rs

/root/repo/target/debug/deps/liblpfps_tasks-3f3b7a0a08ac6fdc.rlib: crates/tasks/src/lib.rs crates/tasks/src/analysis/mod.rs crates/tasks/src/analysis/breakdown.rs crates/tasks/src/analysis/busy_period.rs crates/tasks/src/analysis/hyperperiod.rs crates/tasks/src/analysis/opa.rs crates/tasks/src/analysis/response_time.rs crates/tasks/src/analysis/sensitivity.rs crates/tasks/src/analysis/utilization.rs crates/tasks/src/cycles.rs crates/tasks/src/exec/mod.rs crates/tasks/src/exec/bimodal.rs crates/tasks/src/exec/constant.rs crates/tasks/src/exec/cyclic.rs crates/tasks/src/exec/gaussian.rs crates/tasks/src/exec/uniform.rs crates/tasks/src/freq.rs crates/tasks/src/gen.rs crates/tasks/src/priority.rs crates/tasks/src/rng.rs crates/tasks/src/task.rs crates/tasks/src/taskset.rs crates/tasks/src/time.rs

/root/repo/target/debug/deps/liblpfps_tasks-3f3b7a0a08ac6fdc.rmeta: crates/tasks/src/lib.rs crates/tasks/src/analysis/mod.rs crates/tasks/src/analysis/breakdown.rs crates/tasks/src/analysis/busy_period.rs crates/tasks/src/analysis/hyperperiod.rs crates/tasks/src/analysis/opa.rs crates/tasks/src/analysis/response_time.rs crates/tasks/src/analysis/sensitivity.rs crates/tasks/src/analysis/utilization.rs crates/tasks/src/cycles.rs crates/tasks/src/exec/mod.rs crates/tasks/src/exec/bimodal.rs crates/tasks/src/exec/constant.rs crates/tasks/src/exec/cyclic.rs crates/tasks/src/exec/gaussian.rs crates/tasks/src/exec/uniform.rs crates/tasks/src/freq.rs crates/tasks/src/gen.rs crates/tasks/src/priority.rs crates/tasks/src/rng.rs crates/tasks/src/task.rs crates/tasks/src/taskset.rs crates/tasks/src/time.rs

crates/tasks/src/lib.rs:
crates/tasks/src/analysis/mod.rs:
crates/tasks/src/analysis/breakdown.rs:
crates/tasks/src/analysis/busy_period.rs:
crates/tasks/src/analysis/hyperperiod.rs:
crates/tasks/src/analysis/opa.rs:
crates/tasks/src/analysis/response_time.rs:
crates/tasks/src/analysis/sensitivity.rs:
crates/tasks/src/analysis/utilization.rs:
crates/tasks/src/cycles.rs:
crates/tasks/src/exec/mod.rs:
crates/tasks/src/exec/bimodal.rs:
crates/tasks/src/exec/constant.rs:
crates/tasks/src/exec/cyclic.rs:
crates/tasks/src/exec/gaussian.rs:
crates/tasks/src/exec/uniform.rs:
crates/tasks/src/freq.rs:
crates/tasks/src/gen.rs:
crates/tasks/src/priority.rs:
crates/tasks/src/rng.rs:
crates/tasks/src/task.rs:
crates/tasks/src/taskset.rs:
crates/tasks/src/time.rs:
