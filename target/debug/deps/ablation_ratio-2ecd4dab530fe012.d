/root/repo/target/debug/deps/ablation_ratio-2ecd4dab530fe012.d: crates/bench/src/bin/ablation_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ratio-2ecd4dab530fe012.rmeta: crates/bench/src/bin/ablation_ratio.rs Cargo.toml

crates/bench/src/bin/ablation_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
