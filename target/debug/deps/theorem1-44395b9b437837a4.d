/root/repo/target/debug/deps/theorem1-44395b9b437837a4.d: crates/core/tests/theorem1.rs

/root/repo/target/debug/deps/theorem1-44395b9b437837a4: crates/core/tests/theorem1.rs

crates/core/tests/theorem1.rs:
