/root/repo/target/release/deps/simulate-f6e30caf464bcefe.d: crates/bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-f6e30caf464bcefe: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
