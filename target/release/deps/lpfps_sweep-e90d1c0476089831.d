/root/repo/target/release/deps/lpfps_sweep-e90d1c0476089831.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/liblpfps_sweep-e90d1c0476089831.rlib: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/liblpfps_sweep-e90d1c0476089831.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
