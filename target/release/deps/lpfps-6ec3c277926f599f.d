/root/repo/target/release/deps/lpfps-6ec3c277926f599f.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/release/deps/liblpfps-6ec3c277926f599f.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/release/deps/liblpfps-6ec3c277926f599f.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
