/root/repo/target/release/deps/determinism_prop-e74fb87ea05f66df.d: crates/sweep/tests/determinism_prop.rs

/root/repo/target/release/deps/determinism_prop-e74fb87ea05f66df: crates/sweep/tests/determinism_prop.rs

crates/sweep/tests/determinism_prop.rs:
