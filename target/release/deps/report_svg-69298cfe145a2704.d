/root/repo/target/release/deps/report_svg-69298cfe145a2704.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/release/deps/report_svg-69298cfe145a2704: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
