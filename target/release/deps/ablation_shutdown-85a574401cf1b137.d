/root/repo/target/release/deps/ablation_shutdown-85a574401cf1b137.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/release/deps/ablation_shutdown-85a574401cf1b137: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
