/root/repo/target/release/deps/lpfps_bench-f2a34ff84487c11f.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/release/deps/liblpfps_bench-f2a34ff84487c11f.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/release/deps/liblpfps_bench-f2a34ff84487c11f.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
