/root/repo/target/release/deps/fig8_power-6802053d0ced2c9c.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/release/deps/fig8_power-6802053d0ced2c9c: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
