/root/repo/target/release/deps/lpfps_kernel-eb14b466f03b27c2.d: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/liblpfps_kernel-eb14b466f03b27c2.rlib: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/liblpfps_kernel-eb14b466f03b27c2.rmeta: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/engine.rs:
crates/kernel/src/gantt.rs:
crates/kernel/src/policy.rs:
crates/kernel/src/queues.rs:
crates/kernel/src/report.rs:
crates/kernel/src/stats.rs:
crates/kernel/src/trace.rs:
