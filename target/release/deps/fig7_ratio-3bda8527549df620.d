/root/repo/target/release/deps/fig7_ratio-3bda8527549df620.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/release/deps/fig7_ratio-3bda8527549df620: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
