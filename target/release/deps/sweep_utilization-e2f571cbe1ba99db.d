/root/repo/target/release/deps/sweep_utilization-e2f571cbe1ba99db.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/release/deps/sweep_utilization-e2f571cbe1ba99db: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
