/root/repo/target/release/deps/serde_json-728331baddefa950.d: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-728331baddefa950.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-728331baddefa950.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
