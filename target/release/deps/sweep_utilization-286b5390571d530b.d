/root/repo/target/release/deps/sweep_utilization-286b5390571d530b.d: crates/bench/src/bin/sweep_utilization.rs

/root/repo/target/release/deps/sweep_utilization-286b5390571d530b: crates/bench/src/bin/sweep_utilization.rs

crates/bench/src/bin/sweep_utilization.rs:
