/root/repo/target/release/deps/lpfps_edf-ffe87fbabb6b6654.d: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/release/deps/liblpfps_edf-ffe87fbabb6b6654.rlib: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

/root/repo/target/release/deps/liblpfps_edf-ffe87fbabb6b6654.rmeta: crates/edf/src/lib.rs crates/edf/src/discrete.rs crates/edf/src/model.rs crates/edf/src/profile.rs crates/edf/src/sim.rs crates/edf/src/yds.rs

crates/edf/src/lib.rs:
crates/edf/src/discrete.rs:
crates/edf/src/model.rs:
crates/edf/src/profile.rs:
crates/edf/src/sim.rs:
crates/edf/src/yds.rs:
