/root/repo/target/release/deps/tradeoff_scheduler-ca11b6337c0d9c72.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/release/deps/tradeoff_scheduler-ca11b6337c0d9c72: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
