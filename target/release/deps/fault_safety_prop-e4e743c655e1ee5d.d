/root/repo/target/release/deps/fault_safety_prop-e4e743c655e1ee5d.d: crates/core/tests/fault_safety_prop.rs

/root/repo/target/release/deps/fault_safety_prop-e4e743c655e1ee5d: crates/core/tests/fault_safety_prop.rs

crates/core/tests/fault_safety_prop.rs:
