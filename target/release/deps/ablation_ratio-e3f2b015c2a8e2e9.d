/root/repo/target/release/deps/ablation_ratio-e3f2b015c2a8e2e9.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/release/deps/ablation_ratio-e3f2b015c2a8e2e9: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
