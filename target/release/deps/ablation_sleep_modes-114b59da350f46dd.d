/root/repo/target/release/deps/ablation_sleep_modes-114b59da350f46dd.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/release/deps/ablation_sleep_modes-114b59da350f46dd: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
