/root/repo/target/release/deps/related_work_dvs-a948aa428e50c152.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/release/deps/related_work_dvs-a948aa428e50c152: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
