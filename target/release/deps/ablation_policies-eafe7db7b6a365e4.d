/root/repo/target/release/deps/ablation_policies-eafe7db7b6a365e4.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/release/deps/ablation_policies-eafe7db7b6a365e4: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
