/root/repo/target/release/deps/ablation_sleep_modes-a17a4bdc0a534004.d: crates/bench/src/bin/ablation_sleep_modes.rs

/root/repo/target/release/deps/ablation_sleep_modes-a17a4bdc0a534004: crates/bench/src/bin/ablation_sleep_modes.rs

crates/bench/src/bin/ablation_sleep_modes.rs:
