/root/repo/target/release/deps/report_svg-ff9b695914aa8e0a.d: crates/bench/src/bin/report_svg.rs

/root/repo/target/release/deps/report_svg-ff9b695914aa8e0a: crates/bench/src/bin/report_svg.rs

crates/bench/src/bin/report_svg.rs:
