/root/repo/target/release/deps/lpfps_kernel-de2aded5019bef2a.d: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/liblpfps_kernel-de2aded5019bef2a.rlib: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

/root/repo/target/release/deps/liblpfps_kernel-de2aded5019bef2a.rmeta: crates/kernel/src/lib.rs crates/kernel/src/engine.rs crates/kernel/src/gantt.rs crates/kernel/src/policy.rs crates/kernel/src/queues.rs crates/kernel/src/report.rs crates/kernel/src/stats.rs crates/kernel/src/trace.rs

crates/kernel/src/lib.rs:
crates/kernel/src/engine.rs:
crates/kernel/src/gantt.rs:
crates/kernel/src/policy.rs:
crates/kernel/src/queues.rs:
crates/kernel/src/report.rs:
crates/kernel/src/stats.rs:
crates/kernel/src/trace.rs:
