/root/repo/target/release/deps/ablation_policies-fc2ed78d6095b151.d: crates/bench/src/bin/ablation_policies.rs

/root/repo/target/release/deps/ablation_policies-fc2ed78d6095b151: crates/bench/src/bin/ablation_policies.rs

crates/bench/src/bin/ablation_policies.rs:
