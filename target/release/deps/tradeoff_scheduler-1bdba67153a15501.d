/root/repo/target/release/deps/tradeoff_scheduler-1bdba67153a15501.d: crates/bench/src/bin/tradeoff_scheduler.rs

/root/repo/target/release/deps/tradeoff_scheduler-1bdba67153a15501: crates/bench/src/bin/tradeoff_scheduler.rs

crates/bench/src/bin/tradeoff_scheduler.rs:
