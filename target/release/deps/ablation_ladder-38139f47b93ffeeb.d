/root/repo/target/release/deps/ablation_ladder-38139f47b93ffeeb.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/release/deps/ablation_ladder-38139f47b93ffeeb: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
