/root/repo/target/release/deps/ablation_shutdown-c262180b0ff60514.d: crates/bench/src/bin/ablation_shutdown.rs

/root/repo/target/release/deps/ablation_shutdown-c262180b0ff60514: crates/bench/src/bin/ablation_shutdown.rs

crates/bench/src/bin/ablation_shutdown.rs:
