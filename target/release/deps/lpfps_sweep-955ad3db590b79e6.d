/root/repo/target/release/deps/lpfps_sweep-955ad3db590b79e6.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/lpfps_sweep-955ad3db590b79e6: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
