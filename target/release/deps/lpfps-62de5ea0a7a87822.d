/root/repo/target/release/deps/lpfps-62de5ea0a7a87822.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/release/deps/liblpfps-62de5ea0a7a87822.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

/root/repo/target/release/deps/liblpfps-62de5ea0a7a87822.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/driver.rs crates/core/src/lpfps_policy.rs crates/core/src/speed.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/driver.rs:
crates/core/src/lpfps_policy.rs:
crates/core/src/speed.rs:
