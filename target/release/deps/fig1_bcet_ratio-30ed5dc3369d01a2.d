/root/repo/target/release/deps/fig1_bcet_ratio-30ed5dc3369d01a2.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/release/deps/fig1_bcet_ratio-30ed5dc3369d01a2: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
