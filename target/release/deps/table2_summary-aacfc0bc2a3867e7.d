/root/repo/target/release/deps/table2_summary-aacfc0bc2a3867e7.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/release/deps/table2_summary-aacfc0bc2a3867e7: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
