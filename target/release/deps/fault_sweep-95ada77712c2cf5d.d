/root/repo/target/release/deps/fault_sweep-95ada77712c2cf5d.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-95ada77712c2cf5d: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
