/root/repo/target/release/deps/fig2_schedule-8d6c9955143ced32.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/release/deps/fig2_schedule-8d6c9955143ced32: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
