/root/repo/target/release/deps/criterion-efa87c4a2b7dd5a4.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-efa87c4a2b7dd5a4.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-efa87c4a2b7dd5a4.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
