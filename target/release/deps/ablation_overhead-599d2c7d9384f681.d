/root/repo/target/release/deps/ablation_overhead-599d2c7d9384f681.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-599d2c7d9384f681: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
