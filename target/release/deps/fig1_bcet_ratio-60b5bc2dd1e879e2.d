/root/repo/target/release/deps/fig1_bcet_ratio-60b5bc2dd1e879e2.d: crates/bench/src/bin/fig1_bcet_ratio.rs

/root/repo/target/release/deps/fig1_bcet_ratio-60b5bc2dd1e879e2: crates/bench/src/bin/fig1_bcet_ratio.rs

crates/bench/src/bin/fig1_bcet_ratio.rs:
