/root/repo/target/release/deps/ablation_overhead-2637f88207bd8439.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-2637f88207bd8439: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
