/root/repo/target/release/deps/ablation_ratio-0e9697ee7a554a5b.d: crates/bench/src/bin/ablation_ratio.rs

/root/repo/target/release/deps/ablation_ratio-0e9697ee7a554a5b: crates/bench/src/bin/ablation_ratio.rs

crates/bench/src/bin/ablation_ratio.rs:
