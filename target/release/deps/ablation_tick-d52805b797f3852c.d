/root/repo/target/release/deps/ablation_tick-d52805b797f3852c.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/release/deps/ablation_tick-d52805b797f3852c: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
