/root/repo/target/release/deps/table2_summary-1ddda11c950150a1.d: crates/bench/src/bin/table2_summary.rs

/root/repo/target/release/deps/table2_summary-1ddda11c950150a1: crates/bench/src/bin/table2_summary.rs

crates/bench/src/bin/table2_summary.rs:
