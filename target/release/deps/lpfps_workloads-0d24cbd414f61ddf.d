/root/repo/target/release/deps/lpfps_workloads-0d24cbd414f61ddf.d: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/release/deps/liblpfps_workloads-0d24cbd414f61ddf.rlib: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

/root/repo/target/release/deps/liblpfps_workloads-0d24cbd414f61ddf.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avionics.rs crates/workloads/src/bcet_figure1.rs crates/workloads/src/catalog.rs crates/workloads/src/cnc.rs crates/workloads/src/flight.rs crates/workloads/src/ins.rs crates/workloads/src/table1.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avionics.rs:
crates/workloads/src/bcet_figure1.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/cnc.rs:
crates/workloads/src/flight.rs:
crates/workloads/src/ins.rs:
crates/workloads/src/table1.rs:
