/root/repo/target/release/deps/simulate-b111419dbe0af1a8.d: crates/bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-b111419dbe0af1a8: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
