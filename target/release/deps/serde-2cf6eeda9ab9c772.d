/root/repo/target/release/deps/serde-2cf6eeda9ab9c772.d: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/release/deps/libserde-2cf6eeda9ab9c772.rlib: third_party/serde/src/lib.rs third_party/serde/src/value.rs

/root/repo/target/release/deps/libserde-2cf6eeda9ab9c772.rmeta: third_party/serde/src/lib.rs third_party/serde/src/value.rs

third_party/serde/src/lib.rs:
third_party/serde/src/value.rs:
