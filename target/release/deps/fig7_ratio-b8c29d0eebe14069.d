/root/repo/target/release/deps/fig7_ratio-b8c29d0eebe14069.d: crates/bench/src/bin/fig7_ratio.rs

/root/repo/target/release/deps/fig7_ratio-b8c29d0eebe14069: crates/bench/src/bin/fig7_ratio.rs

crates/bench/src/bin/fig7_ratio.rs:
