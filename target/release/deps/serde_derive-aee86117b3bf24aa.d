/root/repo/target/release/deps/serde_derive-aee86117b3bf24aa.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-aee86117b3bf24aa.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
