/root/repo/target/release/deps/determinism-a115f1291c04fe4d.d: crates/sweep/tests/determinism.rs

/root/repo/target/release/deps/determinism-a115f1291c04fe4d: crates/sweep/tests/determinism.rs

crates/sweep/tests/determinism.rs:
