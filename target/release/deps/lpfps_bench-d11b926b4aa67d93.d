/root/repo/target/release/deps/lpfps_bench-d11b926b4aa67d93.d: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/release/deps/liblpfps_bench-d11b926b4aa67d93.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs

/root/repo/target/release/deps/liblpfps_bench-d11b926b4aa67d93.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
