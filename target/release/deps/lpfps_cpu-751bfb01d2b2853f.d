/root/repo/target/release/deps/lpfps_cpu-751bfb01d2b2853f.d: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/release/deps/liblpfps_cpu-751bfb01d2b2853f.rlib: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

/root/repo/target/release/deps/liblpfps_cpu-751bfb01d2b2853f.rmeta: crates/cpu/src/lib.rs crates/cpu/src/energy.rs crates/cpu/src/ladder.rs crates/cpu/src/modes.rs crates/cpu/src/power.rs crates/cpu/src/ramp.rs crates/cpu/src/spec.rs crates/cpu/src/state.rs crates/cpu/src/vf.rs

crates/cpu/src/lib.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/ladder.rs:
crates/cpu/src/modes.rs:
crates/cpu/src/power.rs:
crates/cpu/src/ramp.rs:
crates/cpu/src/spec.rs:
crates/cpu/src/state.rs:
crates/cpu/src/vf.rs:
