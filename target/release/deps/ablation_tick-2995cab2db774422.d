/root/repo/target/release/deps/ablation_tick-2995cab2db774422.d: crates/bench/src/bin/ablation_tick.rs

/root/repo/target/release/deps/ablation_tick-2995cab2db774422: crates/bench/src/bin/ablation_tick.rs

crates/bench/src/bin/ablation_tick.rs:
