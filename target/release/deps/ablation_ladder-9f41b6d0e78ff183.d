/root/repo/target/release/deps/ablation_ladder-9f41b6d0e78ff183.d: crates/bench/src/bin/ablation_ladder.rs

/root/repo/target/release/deps/ablation_ladder-9f41b6d0e78ff183: crates/bench/src/bin/ablation_ladder.rs

crates/bench/src/bin/ablation_ladder.rs:
