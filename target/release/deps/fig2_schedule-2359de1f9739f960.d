/root/repo/target/release/deps/fig2_schedule-2359de1f9739f960.d: crates/bench/src/bin/fig2_schedule.rs

/root/repo/target/release/deps/fig2_schedule-2359de1f9739f960: crates/bench/src/bin/fig2_schedule.rs

crates/bench/src/bin/fig2_schedule.rs:
