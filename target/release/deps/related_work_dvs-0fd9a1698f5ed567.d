/root/repo/target/release/deps/related_work_dvs-0fd9a1698f5ed567.d: crates/bench/src/bin/related_work_dvs.rs

/root/repo/target/release/deps/related_work_dvs-0fd9a1698f5ed567: crates/bench/src/bin/related_work_dvs.rs

crates/bench/src/bin/related_work_dvs.rs:
