/root/repo/target/release/deps/lpfps_faults-9b0f0156b2cfc56b.d: crates/faults/src/lib.rs

/root/repo/target/release/deps/liblpfps_faults-9b0f0156b2cfc56b.rlib: crates/faults/src/lib.rs

/root/repo/target/release/deps/liblpfps_faults-9b0f0156b2cfc56b.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
