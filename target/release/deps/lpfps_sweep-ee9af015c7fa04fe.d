/root/repo/target/release/deps/lpfps_sweep-ee9af015c7fa04fe.d: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/liblpfps_sweep-ee9af015c7fa04fe.rlib: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

/root/repo/target/release/deps/liblpfps_sweep-ee9af015c7fa04fe.rmeta: crates/sweep/src/lib.rs crates/sweep/src/cell.rs crates/sweep/src/cli.rs crates/sweep/src/metrics.rs crates/sweep/src/runner.rs crates/sweep/src/spec.rs

crates/sweep/src/lib.rs:
crates/sweep/src/cell.rs:
crates/sweep/src/cli.rs:
crates/sweep/src/metrics.rs:
crates/sweep/src/runner.rs:
crates/sweep/src/spec.rs:
