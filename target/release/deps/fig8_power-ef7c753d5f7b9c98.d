/root/repo/target/release/deps/fig8_power-ef7c753d5f7b9c98.d: crates/bench/src/bin/fig8_power.rs

/root/repo/target/release/deps/fig8_power-ef7c753d5f7b9c98: crates/bench/src/bin/fig8_power.rs

crates/bench/src/bin/fig8_power.rs:
