(function() {
    const implementors = Object.fromEntries([["lpfps",[["impl <a class=\"trait\" href=\"lpfps_kernel/policy/trait.PowerPolicy.html\" title=\"trait lpfps_kernel::policy::PowerPolicy\">PowerPolicy</a> for <a class=\"struct\" href=\"lpfps/baselines/struct.TimeoutShutdown.html\" title=\"struct lpfps::baselines::TimeoutShutdown\">TimeoutShutdown</a>",0],["impl <a class=\"trait\" href=\"lpfps_kernel/policy/trait.PowerPolicy.html\" title=\"trait lpfps_kernel::policy::PowerPolicy\">PowerPolicy</a> for <a class=\"struct\" href=\"lpfps/lpfps_policy/struct.LpfpsPolicy.html\" title=\"struct lpfps::lpfps_policy::LpfpsPolicy\">LpfpsPolicy</a>",0]]],["lpfps",[["impl PowerPolicy for <a class=\"struct\" href=\"lpfps/baselines/struct.TimeoutShutdown.html\" title=\"struct lpfps::baselines::TimeoutShutdown\">TimeoutShutdown</a>",0],["impl PowerPolicy for <a class=\"struct\" href=\"lpfps/lpfps_policy/struct.LpfpsPolicy.html\" title=\"struct lpfps::lpfps_policy::LpfpsPolicy\">LpfpsPolicy</a>",0]]],["lpfps_kernel",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[597,348,20]}