(function() {
    const implementors = Object.fromEntries([["lpfps_sweep",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"lpfps_sweep/cli/enum.CliError.html\" title=\"enum lpfps_sweep::cli::CliError\">CliError</a>",0]]],["serde",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"serde/struct.Error.html\" title=\"struct serde::Error\">Error</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[283,254]}