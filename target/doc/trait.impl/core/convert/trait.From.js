(function() {
    const implementors = Object.fromEntries([["lpfps_sweep",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"lpfps/driver/enum.PolicyKind.html\" title=\"enum lpfps::driver::PolicyKind\">PolicyKind</a>&gt; for <a class=\"enum\" href=\"lpfps_sweep/cell/enum.PolicyChoice.html\" title=\"enum lpfps_sweep::cell::PolicyChoice\">PolicyChoice</a>",0]]],["lpfps_sweep",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;PolicyKind&gt; for <a class=\"enum\" href=\"lpfps_sweep/cell/enum.PolicyChoice.html\" title=\"enum lpfps_sweep::cell::PolicyChoice\">PolicyChoice</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[422,317]}