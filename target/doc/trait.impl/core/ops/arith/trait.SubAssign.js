(function() {
    const implementors = Object.fromEntries([["lpfps_tasks",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"lpfps_tasks/cycles/struct.Cycles.html\" title=\"struct lpfps_tasks::cycles::Cycles\">Cycles</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"lpfps_tasks/time/struct.Dur.html\" title=\"struct lpfps_tasks::time::Dur\">Dur</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[590]}