(function() {
    const implementors = Object.fromEntries([["lpfps_tasks",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u64.html\">u64</a>&gt; for <a class=\"struct\" href=\"lpfps_tasks/cycles/struct.Cycles.html\" title=\"struct lpfps_tasks::cycles::Cycles\">Cycles</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u64.html\">u64</a>&gt; for <a class=\"struct\" href=\"lpfps_tasks/freq/struct.Freq.html\" title=\"struct lpfps_tasks::freq::Freq\">Freq</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u64.html\">u64</a>&gt; for <a class=\"struct\" href=\"lpfps_tasks/time/struct.Dur.html\" title=\"struct lpfps_tasks::time::Dur\">Dur</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1128]}