(function() {
    const implementors = Object.fromEntries([["fig2_schedule",[["impl <a class=\"trait\" href=\"lpfps_tasks/exec/trait.ExecModel.html\" title=\"trait lpfps_tasks::exec::ExecModel\">ExecModel</a> for <a class=\"struct\" href=\"fig2_schedule/struct.Figure2b.html\" title=\"struct fig2_schedule::Figure2b\">Figure2b</a>",0]]],["fig2_schedule",[["impl ExecModel for <a class=\"struct\" href=\"fig2_schedule/struct.Figure2b.html\" title=\"struct fig2_schedule::Figure2b\">Figure2b</a>",0]]],["lpfps_tasks",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[277,163,19]}