//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! against the vendored `serde` facade (a tree-model `to_value` /
//! `from_value` pair rather than the real visitor architecture). It parses
//! the item's token stream by hand — no `syn`, no `quote` — and supports
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple structs (arity 1 serializes transparently, like serde newtypes),
//! * enums with unit, tuple, and struct variants (externally tagged, the
//!   serde default: `"Variant"`, `{"Variant": value}`, `{"Variant": {...}}`).
//!
//! Generic types are rejected with a compile error.

// Vendored stub, not library surface: internal `expect`/`panic!` here are
// build-time assertions, exempt from the workspace's panic-free boundary.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// token-stream parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Splits a field-list or variant-list token stream on top-level commas,
/// tracking `<`/`>` depth so commas inside generic arguments (e.g.
/// `Vec<(Time, TraceEvent)>`) do not split.
fn split_on_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consumes leading attributes from `tokens[i..]`, returning the next index
/// and whether any attribute was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if !inner.is_empty() && is_ident(&inner[0], "serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let body = args.stream().to_string();
                        if body.split(',').any(|a| a.trim() == "skip") {
                            skip = true;
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, skip)
}

/// Consumes an optional visibility (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Parses `name: Type, ...` named fields (with attributes and visibility).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    for piece in split_on_commas(&tokens) {
        let (i, skip) = skip_attrs(&piece, 0);
        let i = skip_vis(&piece, i);
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !piece.get(i + 1).map(|t| is_punct(t, ':')).unwrap_or(false) {
            return Err(format!("expected ':' after field `{name}`"));
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for piece in split_on_commas(&tokens) {
        let (i, _) = skip_attrs(&piece, 0);
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let kind = match piece.get(i + 1) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(split_on_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            other => {
                return Err(format!(
                    "unsupported variant shape after `{name}`: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Item-level attributes (doc comments, other derives' helpers).
    loop {
        let (next, _) = skip_attrs(&tokens, i);
        if next == i {
            break;
        }
        i = next;
    }
    i = skip_vis(&tokens, i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        return Err(format!(
            "expected `struct` or `enum`, found {:?}",
            tokens[i]
        ));
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if tokens.get(i).map(|t| is_punct(t, '<')).unwrap_or(false) {
        return Err(format!(
            "the vendored serde_derive does not support generic types (`{name}`)"
        ));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            } else {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::TupleStruct {
                name,
                arity: split_on_commas(&inner).len(),
            })
        }
        other => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// code generation (string-built, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut __m = ::serde::value::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(__m)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::value::variant(\"{v}\", {inner}),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("{ let mut __m = ::serde::value::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::value::variant(\"{v}\", {inner}),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn named_fields_ctor(ty: &str, fields: &[Field], map_expr: &str) -> String {
    let mut ctor = String::new();
    for f in fields {
        if f.skip {
            ctor.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            // Missing fields fall back to deserializing from Null so that
            // `Option<T>` fields may be absent (serde's behaviour); other
            // types turn that into a "missing field" error.
            ctor.push_str(&format!(
                "{0}: match {map_expr}.get(\"{0}\") {{\n\
                     Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                         .map_err(|_| ::serde::Error::missing_field(\"{ty}\", \"{0}\"))?,\n\
                 }},\n",
                f.name
            ));
        }
    }
    ctor
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let ctor = named_fields_ctor(name, fields, "__m");
            let body = format!(
                "let __m = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected a JSON object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{ctor}\n}})"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__value)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__a.get({i}).ok_or_else(|| \
                             ::serde::Error::custom(\"tuple struct {name} is too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __a = __value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected a JSON array for {name}\"))?;\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(__inner)?))",
                                v = v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__a.get({i})\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                         \"variant {v} is too short\"))?)?",
                                        v = v.name
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {v}\"))?;\n\
                                 ::core::result::Result::Ok({name}::{v}({items})) }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{v}\" => {build},\n", v = v.name));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor =
                            named_fields_ctor(&format!("{name}::{}", v.name), fields, "__vm");
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let __vm = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {v}\"))?;\n\
                             ::core::result::Result::Ok({name}::{v} {{\n{ctor}\n}}) }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            let body = format!(
                "match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err(::serde::Error::custom(\
                             &::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = __m.iter().next().expect(\"len checked\");\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::core::result::Result::Err(::serde::Error::custom(\
                                 &::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::core::result::Result::Err(::serde::Error::custom(\
                         \"expected a string or single-key object for {name}\")),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse()
        .expect("vendored serde_derive generated invalid Rust")
}

/// Derives the vendored `serde::Serialize` (tree-model `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` (tree-model `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
