//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

/// Generates `Vec`s whose length is drawn from `size` (half-open, as in
/// `vec(elem, 1..10)`) and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.try_sample(rng)?);
        }
        Some(out)
    }
}
