//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest this workspace uses: the
//! `proptest!` macro (with `#![proptest_config(...)]`), range and
//! `collection::vec` strategies, tuple strategies, `prop_map` /
//! `prop_filter`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Unlike the real crate it does no shrinking and no failure persistence
//! (`.proptest-regressions` files are ignored); generation is a simple
//! deterministic SplitMix64 stream, so failures reproduce run-to-run.

// Vendored stub, not library surface: internal `expect`/`panic!` here are
// build-time assertions, exempt from the workspace's panic-free boundary.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod strategy;

pub mod test_runner;

pub mod collection;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Strategy producing `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn try_sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Everything a property test file normally imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(0u64..10, 1..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                &__strategy,
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property test; failures report the generated inputs'
/// test case instead of panicking at the assertion site.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discards the current case (without counting it) when the assumption
/// does not hold; the runner draws a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
