//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// `try_sample` returns `None` when a local constraint (a `prop_filter`)
/// rejects the draw; the runner retries with fresh randomness without
/// counting the case.
pub trait Strategy {
    type Value;

    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`; `reason` labels the
    /// rejection (unused here beyond documentation, as in real proptest it
    /// only surfaces in rejection statistics).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Strategies are usable behind references (the runner borrows them).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).try_sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn try_sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_sample(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner
            .try_sample(rng)
            .filter(|value| (self.pred)(value))
    }
}

// ---------------------------------------------------------------------------
// integer ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn try_sample(&self, rng: &mut TestRng) -> Option<$ty> {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let draw = (rng.next_u64() as u128) % span;
                Some((lo + draw as i128) as $ty)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn try_sample(&self, rng: &mut TestRng) -> Option<$ty> {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                Some((lo + draw as i128) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.try_sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
