//! Test execution: configuration, deterministic RNG, and the case loop.

use crate::strategy::Strategy;

/// Subset of proptest's configuration that this workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejections (filters + `prop_assume!`) tolerated before the
    /// test errors out as unable to generate valid inputs.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated. Aborts the test.
    Fail(String),
    /// `prop_assume!` rejection: the input is invalid. Retried without
    /// counting toward the case budget.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// Deterministic SplitMix64 stream. Seeded from the test name so every
/// property test explores a distinct but reproducible sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives `config.cases` successful executions of `body` over inputs drawn
/// from `strategy`. Panics (failing the enclosing `#[test]`) on the first
/// property violation, reporting the offending case index.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_from_name(name));
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest `{name}`: exceeded {} input rejections after {passed} passing cases \
                 — strategy filters/prop_assume! are too strict",
                config.max_global_rejects
            );
        }
        let Some(input) = strategy.try_sample(&mut rng) else {
            rejected += 1;
            continue;
        };
        match body(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}
