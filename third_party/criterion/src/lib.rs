//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the macro/API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `black_box` — with a simple wall-clock
//! harness: warm up briefly, time a fixed batch of iterations per sample,
//! and print mean/min/max per-iteration times. No statistics engine, no
//! HTML reports, no `target/criterion` state.

// Vendored stub, not library surface: internal `expect`/`panic!` here are
// build-time assertions, exempt from the workspace's panic-free boundary.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup output to amortize per timing batch. The vendored harness
/// only distinguishes "run the routine once per setup" from "reuse setup
/// across a small batch"; the distinction only affects timing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn iters_per_setup(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher {
    fn new(sample_count: u64) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 32,
            sample_count,
        }
    }

    /// Benchmarks `routine` by timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call so lazy initialization does not skew
        // the first sample.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Benchmarks `routine` over inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_setup = size.iters_per_setup();
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            while iters < self.iters_per_sample {
                let inputs: Vec<I> = (0..per_setup).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                elapsed += start.elapsed();
                iters += per_setup;
            }
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark (criterion's
    /// `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1) as u64;
        self
    }

    /// Runs one benchmark: hands a [`Bencher`] to `f` and prints the
    /// timing summary.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Single-function benchmark without a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }
}

/// Declares a benchmark group function, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
