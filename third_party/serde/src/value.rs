//! JSON-like value tree shared by the vendored `serde` and `serde_json`.

use crate::Error;

/// Insertion-order-preserving string→value map, so serialized objects list
/// fields in declaration order and output stays deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `key`, replacing the value (in place) if the key exists.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable counterpart of [`Map::iter`], in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// JSON number. Integers keep their exact representation; parsing and
/// serialization never silently route an integer through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                // Both integral but at least one exceeds i64: compare as u64
                // (negatives would have produced Some above).
                _ => a.as_u64() == b.as_u64(),
            },
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` keeps a trailing `.0` on integral floats ("1.0"), which
            // matches serde_json's output and round-trips as a float.
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// Builds the externally-tagged form `{"<tag>": inner}` used for enum
/// variants with payloads (the serde default representation).
pub fn variant(tag: &str, inner: Value) -> Value {
    let mut map = Map::new();
    map.insert(tag.to_string(), inner);
    Value::Object(map)
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(n) => {
                        (*other as i128)
                            == match *n {
                                Number::PosInt(u) => i128::from(u),
                                Number::NegInt(i) => i128::from(i),
                                Number::Float(_) => return false,
                            }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Shared by the vendored `serde` derives and `serde_json::from_str`: turns
/// a missing-key lookup into either a defaulted value (for `Option`) or a
/// descriptive error. Exposed for generated code; not part of the real serde
/// API.
pub fn expect_field<'v>(map: &'v Map, ty: &str, field: &str) -> Result<&'v Value, Error> {
    map.get(field)
        .ok_or_else(|| Error::missing_field(ty, field))
}
