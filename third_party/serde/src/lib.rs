//! Vendored, dependency-free stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the minimal surface the workspace actually uses: `Serialize` /
//! `Deserialize` traits, the derive macros (re-exported from the vendored
//! `serde_derive`), and a JSON-like [`Value`] tree. Instead of serde's
//! visitor architecture, serialization is tree-model: `to_value` builds a
//! [`Value`], `from_value` reads one back. `serde_json` (also vendored)
//! renders and parses that tree.

// Vendored stub, not library surface: internal `expect`/`panic!` here are
// build-time assertions, exempt from the workspace's panic-free boundary.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod value;

pub use value::{Map, Number, Value};

// Derive macros live in the macro namespace, so re-exporting them does not
// clash with the traits of the same name below — exactly how the real serde
// crate re-exports serde_derive.
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization/deserialization error (shared with the vendored serde_json).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// traits
// ---------------------------------------------------------------------------

/// Tree-model serialization: convert `self` into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Tree-model deserialization: rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// blanket / reference impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected a ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected a ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

/// The workspace stores compile-time names as `&'static str` in types that
/// also derive `Deserialize`. Round-tripped strings are leaked to obtain the
/// static lifetime; deserialization is a test/tool path, so the leak is
/// bounded and acceptable.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, got {got}")))
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected an array for tuple"))?;
                Ok(($(
                    $name::from_value(
                        arr.get($idx)
                            .ok_or_else(|| Error::custom("tuple array too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as JSON objects; the key's serialized form must therefore
/// be a string or an integer (rendered in decimal), matching how serde_json
/// handles map keys.
fn key_to_string(key: Value) -> String {
    match key {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object for map"))?;
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in obj.iter() {
            let key = K::from_value(&Value::String(k.clone()))?;
            out.insert(key, V::from_value(v)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
