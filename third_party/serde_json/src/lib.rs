//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Entry points mirror the real crate's signatures (`to_string`,
//! `to_string_pretty`, `to_value`, `from_str`) but operate on the vendored
//! `serde` tree model: serialization renders a [`Value`], deserialization
//! parses JSON text into a [`Value`] and hands it to `Deserialize`.

// Vendored stub, not library surface: internal `expect`/`panic!` here are
// build-time assertions, exempt from the workspace's panic-free boundary.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable type into a [`Value`] tree.
///
/// The `Result` wrapper matches the real serde_json API; this implementation
/// cannot fail.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Renders `value` as compact JSON (no whitespace).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON with 2-space indentation,
/// matching the real serde_json pretty printer.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("42").unwrap(), 42u64);
        assert_eq!(parse("-7").unwrap(), -7);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), true);
    }

    #[test]
    fn float_keeps_point_zero() {
        let v = Value::Number(Number::Float(1.0));
        assert_eq!(to_string(&v).unwrap(), "1.0");
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = parse(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
        // Compact output and reparse are stable.
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(from_str::<u64>("[").is_err());
    }
}
