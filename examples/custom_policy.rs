//! Extending the kernel: write your own power policy.
//!
//! The kernel exposes the same hook LPFPS uses — a [`PowerPolicy`] that
//! receives the scheduler's view (queues, the active job's WCET-remaining
//! work, the next arrival) and answers with a power directive. This
//! example implements a deliberately conservative policy that only ever
//! halves the clock (never lower), compares it against FPS and full
//! LPFPS, and verifies that all three keep every deadline.
//!
//! Run with: `cargo run --release --example custom_policy`

use lpfps::driver::{default_horizon, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::simulate;
use lpfps_kernel::policy::{PolicyCore, PowerDirective, PowerPolicy, SchedulerContext};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::freq::Freq;
use lpfps_workloads::ins;

/// Halve the clock when the active task has at least 2x slack; power down
/// when idle. Simpler than LPFPS (no ratio computation, one precomputed
/// ramp budget) — the kind of policy a kernel might ship when multiply/
/// divide in the scheduler is unwelcome.
#[derive(Debug)]
struct HalfOrFull {
    half: Freq,
}

impl HalfOrFull {
    fn new(cpu: &CpuSpec) -> Self {
        HalfOrFull {
            half: Freq::from_khz(cpu.reference_freq().as_khz() / 2),
        }
    }
}

impl PolicyCore for HalfOrFull {
    fn name(&self) -> &'static str {
        "half-or-full"
    }
}

impl PowerPolicy for HalfOrFull {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> PowerDirective {
        if !ctx.run_queue.is_empty() {
            return PowerDirective::FullSpeed;
        }
        match ctx.active {
            None => match ctx.next_arrival() {
                Some(head) => {
                    let wake_at = head.saturating_sub(ctx.cpu.wakeup_delay());
                    if wake_at > ctx.now {
                        PowerDirective::PowerDown { wake_at, mode: 0 }
                    } else {
                        PowerDirective::FullSpeed
                    }
                }
                None => PowerDirective::FullSpeed,
            },
            Some(active) => {
                let Some(bound) = ctx.safe_completion_bound() else {
                    return PowerDirective::FullSpeed;
                };
                let window = bound.saturating_since(ctx.now);
                let remaining = active.wcet_remaining.time_at(ctx.cpu.reference_freq());
                let ramp_back = ctx.cpu.ramp_duration(self.half, ctx.cpu.full_freq());
                // Safe iff the halved clock finishes the WCET-remaining work
                // before the ramp back to full speed must begin.
                let budget = window.saturating_sub(ramp_back);
                if remaining * 2 <= budget {
                    let speedup_at = bound.saturating_sub(ramp_back);
                    if speedup_at > ctx.now {
                        return PowerDirective::SlowDown {
                            freq: self.half,
                            speedup_at,
                        };
                    }
                }
                PowerDirective::FullSpeed
            }
        }
    }
}

fn main() {
    let ts = ins().with_bcet_fraction(0.4);
    let cpu = CpuSpec::arm8();
    let cfg = SimConfig::new(default_horizon(&ts)).with_seed(11);
    let exec = PaperGaussian;

    let fps = run(&ts, &cpu, PolicyKind::Fps, &exec, &cfg).unwrap();
    let mine = simulate(&ts, &cpu, &mut HalfOrFull::new(&cpu), &exec, &cfg).unwrap();
    let lpfps = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg).unwrap();

    for r in [&fps, &mine, &lpfps] {
        assert!(r.all_deadlines_met(), "{} missed deadlines", r.policy);
        println!("{}", r.summary_line());
    }

    println!();
    println!(
        "the custom policy captures {:.0}% of LPFPS's saving with a much simpler rule",
        100.0 * (fps.average_power() - mine.average_power())
            / (fps.average_power() - lpfps.average_power())
    );
}
