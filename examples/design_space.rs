//! Design-space exploration: how processor parameters change the value of
//! LPFPS.
//!
//! Sweeps three hardware knobs on the INS workload — the voltage
//! threshold of the V–f curve, the voltage-transition rate `rho`, and the
//! frequency-ladder floor — and reports the LPFPS saving for each
//! configuration. This is the study a silicon/platform team would run to
//! decide whether DVS support pays for a given workload class.
//!
//! Run with: `cargo run --release --example design_space`

use lpfps::driver::{default_horizon, power_reduction, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::ladder::FrequencyLadder;
use lpfps_cpu::power::PowerModel;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::vf::VfCurve;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::freq::Freq;

fn saving(cpu: &CpuSpec) -> f64 {
    let ts = lpfps_workloads::ins().with_bcet_fraction(0.3);
    let cfg = SimConfig::new(default_horizon(&ts)).with_seed(5);
    let fps = run(&ts, cpu, PolicyKind::Fps, &PaperGaussian, &cfg).unwrap();
    let lp = run(&ts, cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
    assert!(fps.all_deadlines_met() && lp.all_deadlines_met());
    power_reduction(&fps, &lp)
}

fn main() {
    println!("INS workload at BCET = 30% of WCET; LPFPS saving vs FPS\n");

    println!("-- voltage threshold Vt (V-f curve steepness) --");
    for vt in [0.1, 0.4, 0.8, 1.2] {
        let vf = VfCurve::new(Freq::from_mhz(100), 3.3, vt);
        let cpu = CpuSpec::new(
            FrequencyLadder::default(),
            PowerModel::new(vf, 0.2, 0.05),
            0.07,
            10,
        );
        println!("  Vt = {vt:.1} V: saving {:.1}%", saving(&cpu) * 100.0);
    }

    println!("\n-- transition rate rho (ratio change per us) --");
    for rho in [0.007, 0.07, 0.7] {
        let cpu = CpuSpec::new(FrequencyLadder::default(), PowerModel::default(), rho, 10);
        let worst = cpu.worst_ramp_duration();
        println!(
            "  rho = {rho:<6}: worst ramp {worst}, saving {:.1}%",
            saving(&cpu) * 100.0
        );
    }

    println!("\n-- frequency ladder floor --");
    for floor_mhz in [8u64, 25, 50, 75] {
        let ladder = FrequencyLadder::new(
            Freq::from_mhz(floor_mhz),
            Freq::from_mhz(100),
            Freq::from_mhz(1),
        );
        let cpu = CpuSpec::new(ladder, PowerModel::default(), 0.07, 10);
        println!(
            "  floor {floor_mhz:>3} MHz: saving {:.1}%",
            saving(&cpu) * 100.0
        );
    }

    println!("\n-- no DVS at all (frequency fixed, power-down only) --");
    let cpu = CpuSpec::arm8_fixed_frequency();
    println!("  fixed 100 MHz: saving {:.1}%", saving(&cpu) * 100.0);

    println!("\nreading: the saving is dominated by how deep the ladder goes and");
    println!("how cheap low-voltage operation is; transition speed matters much");
    println!("less because LPFPS budgets ramps conservatively either way.");
}
