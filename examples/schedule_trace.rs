//! Inspecting a schedule: run the CNC machine controller under LPFPS with
//! full event tracing, render the Gantt chart, and list every frequency
//! change and power-down the scheduler performed.
//!
//! Run with: `cargo run --release --example schedule_trace`

use lpfps::{LpfpsPolicy, SimConfig};
use lpfps_cpu::spec::CpuSpec;
use lpfps_kernel::engine::simulate;
use lpfps_kernel::gantt::Gantt;
use lpfps_kernel::trace::TraceEvent;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::time::{Dur, Time};
use lpfps_workloads::cnc;

fn main() {
    let ts = cnc().with_bcet_fraction(0.4);
    let cpu = CpuSpec::arm8();
    let horizon = Dur::from_us(9_600); // one CNC hyperperiod
    let cfg = SimConfig::new(horizon).with_seed(3).with_trace();

    let report = simulate(&ts, &cpu, &mut LpfpsPolicy::new(), &PaperGaussian, &cfg).unwrap();
    assert!(report.all_deadlines_met(), "misses: {:?}", report.misses);
    let trace = report.trace.as_ref().expect("tracing enabled");

    println!("CNC controller, one hyperperiod ({horizon}) under LPFPS\n");
    let gantt = Gantt::from_trace(trace, Time::ZERO + horizon);
    print!("{}", gantt.render(&ts, 100));
    println!("  (one column = 100us; '#' run, '~' ramp, 'z' power-down, '.' idle)\n");

    println!("power management actions:");
    for (t, e) in trace.iter() {
        match e {
            TraceEvent::RampStart { from, to } => println!("  {t:>10}  ramp {from} -> {to}"),
            TraceEvent::EnterPowerDown { wake_at } => {
                println!("  {t:>10}  power-down until {wake_at}")
            }
            _ => {}
        }
    }

    println!();
    println!("per-task worst/mean response vs deadline:");
    for (id, task, _) in ts.iter() {
        let stats = &report.responses[id.0];
        println!(
            "  {:<22} jobs={:<3} max={:<10} mean={:<10} deadline={}",
            task.name(),
            stats.completed,
            stats.max_response.to_string(),
            stats.mean_response().to_string(),
            task.deadline()
        );
    }
    println!();
    print!("{}", report.render_detailed(&ts));
}
