//! Domain scenario: power-budgeting the Generic Avionics Platform.
//!
//! A mission computer integrator wants to know, before committing to a
//! DVS-capable part, how much average power LPFPS would save on the GAP
//! workload across the plausible range of execution-time variation — and
//! where the energy actually goes (busy vs ramp vs idle vs power-down).
//!
//! Run with: `cargo run --release --example avionics_power`

use lpfps::driver::{default_horizon, power_reduction, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_cpu::state::StateKind;
use lpfps_tasks::exec::PaperGaussian;
use lpfps_workloads::avionics;

fn main() {
    let base = avionics();
    let cpu = CpuSpec::arm8();
    let horizon = default_horizon(&base);
    println!(
        "Generic Avionics Platform: {} tasks, U = {:.3}, simulated for {horizon}\n",
        base.len(),
        base.utilization()
    );

    println!(
        "{:>6} {:>10} {:>10} {:>10}   energy split of LPFPS (busy/ramp/idle/pdown/wake)",
        "bcet%", "fps", "lpfps", "saving"
    );
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let ts = base.with_bcet_fraction(frac);
        let cfg = SimConfig::new(horizon).with_seed(7);
        let fps = run(&ts, &cpu, PolicyKind::Fps, &PaperGaussian, &cfg).unwrap();
        let lp = run(&ts, &cpu, PolicyKind::Lpfps, &PaperGaussian, &cfg).unwrap();
        assert!(fps.all_deadlines_met() && lp.all_deadlines_met());

        let split: Vec<String> = [
            StateKind::Busy,
            StateKind::Ramping,
            StateKind::IdleNop,
            StateKind::PowerDown,
            StateKind::WakingUp,
        ]
        .iter()
        .map(|&k| format!("{:.1}%", lp.residency_fraction(k) * 100.0))
        .collect();

        println!(
            "{:>6.0} {:>10.4} {:>10.4} {:>9.1}%   {}",
            frac * 100.0,
            fps.average_power(),
            lp.average_power(),
            power_reduction(&fps, &lp) * 100.0,
            split.join(" / "),
        );
    }

    println!();
    println!("reading: LPFPS converts the NOP-idle residency of FPS into");
    println!("power-down residency and stretches lone tasks at low voltage;");
    println!("the saving grows as real execution times shrink below the WCET.");
}
