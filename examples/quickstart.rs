//! Quickstart: define a task set, check it is schedulable, and compare the
//! power drawn by a conventional fixed-priority scheduler (FPS) against
//! LPFPS on the paper's ARM8-class processor.
//!
//! Run with: `cargo run --release --example quickstart`

use lpfps::driver::{default_horizon, power_reduction, run, PolicyKind};
use lpfps::SimConfig;
use lpfps_cpu::spec::CpuSpec;
use lpfps_tasks::analysis::{response_times, RtaConfig};
use lpfps_tasks::exec::PaperGaussian;
use lpfps_tasks::task::Task;
use lpfps_tasks::taskset::TaskSet;
use lpfps_tasks::time::Dur;

fn main() {
    // 1. A periodic hard-real-time task set (the paper's Table 1), with
    //    rate-monotonic priorities and execution times that vary between
    //    30% of the WCET and the WCET itself.
    let ts = TaskSet::rate_monotonic(
        "table1",
        vec![
            Task::new("tau1", Dur::from_us(50), Dur::from_us(10)),
            Task::new("tau2", Dur::from_us(80), Dur::from_us(20)),
            Task::new("tau3", Dur::from_us(100), Dur::from_us(40)),
        ],
    )
    .with_bcet_fraction(0.3);
    println!("{ts}");

    // 2. Exact schedulability check (response-time analysis).
    println!("worst-case response times:");
    for ((_, task, _), outcome) in ts.iter().zip(response_times(&ts, &RtaConfig::default())) {
        match outcome.response() {
            Some(r) => println!(
                "  {:<6} R = {r} (deadline {})",
                task.name(),
                task.deadline()
            ),
            None => println!("  {:<6} UNSCHEDULABLE", task.name()),
        }
    }

    // 3. Simulate both schedulers on the paper's processor model.
    let cpu = CpuSpec::arm8();
    let cfg = SimConfig::new(default_horizon(&ts)).with_seed(42);
    let exec = PaperGaussian; // the paper's clamped-Gaussian execution times
    let fps = run(&ts, &cpu, PolicyKind::Fps, &exec, &cfg).unwrap();
    let lpfps = run(&ts, &cpu, PolicyKind::Lpfps, &exec, &cfg).unwrap();

    // 4. Both keep every deadline; LPFPS burns less power.
    assert!(fps.all_deadlines_met() && lpfps.all_deadlines_met());
    println!();
    println!(
        "FPS   average power: {:.4} (1.0 = busy at full speed)",
        fps.average_power()
    );
    println!("LPFPS average power: {:.4}", lpfps.average_power());
    println!(
        "power reduction:     {:.1}%",
        power_reduction(&fps, &lpfps) * 100.0
    );
    println!(
        "LPFPS used {} frequency ramps and {} power-downs over {}",
        lpfps.counters.ramps, lpfps.counters.power_downs, cfg.horizon
    );
}
